//! The interrupt guard: SegScope as a *noise filter* for other side
//! channels (paper Sections III-B end and IV-D).

use crate::error::ProbeError;
use segsim::Machine;
use serde::{Deserialize, Serialize};
use x86seg::{PrivilegeLevel, Selector};

/// Guards a measurement against interrupt noise.
///
/// Before a (non-interrupt) side-channel measurement, the attacker plants
/// a non-zero null selector; after it, they check whether the value
/// survived. If it changed, an interrupt landed inside the measurement
/// window and the sample should be discarded. Unlike the timer-based
/// probing baselines, this costs only two segment-register operations per
/// measurement and never reports a false interrupt.
///
/// ```
/// use segscope::InterruptGuard;
/// use segsim::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::default(), 99);
/// let guard = InterruptGuard::arm(&mut m)?;
/// m.spin(500); // the measurement being protected
/// let clean = guard.finish(&mut m);
/// if clean { /* keep the sample */ }
/// # Ok::<(), segscope::ProbeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[must_use = "a guard reports nothing unless finished"]
pub struct InterruptGuard {
    marker: Selector,
}

impl InterruptGuard {
    /// Arms the guard with the default marker (`0x2`).
    ///
    /// # Errors
    ///
    /// [`ProbeError::SegmentWriteDenied`] when segment writes are
    /// restricted.
    pub fn arm(machine: &mut Machine) -> Result<Self, ProbeError> {
        Self::arm_with(machine, Selector::null_with_rpl(PrivilegeLevel::Ring2))
    }

    /// Arms the guard with a chosen non-zero null selector.
    ///
    /// # Errors
    ///
    /// [`ProbeError::SegmentWriteDenied`] when segment writes are
    /// restricted.
    ///
    /// # Panics
    ///
    /// Panics if `marker` is not a non-zero null selector.
    pub fn arm_with(machine: &mut Machine, marker: Selector) -> Result<Self, ProbeError> {
        assert!(
            marker.is_nonzero_null(),
            "guard marker must be non-zero null"
        );
        machine
            .wrgs(marker)
            .map_err(|_| ProbeError::SegmentWriteDenied)?;
        Ok(InterruptGuard { marker })
    }

    /// Finishes the guarded window: returns `true` if **no** interrupt
    /// landed (the measurement is clean).
    pub fn finish(self, machine: &mut Machine) -> bool {
        machine.rdgs() == self.marker
    }

    /// Runs `measurement` under the guard and returns its output only when
    /// the window was interrupt-free; interrupted measurements yield
    /// `None` so the caller can retry.
    ///
    /// # Errors
    ///
    /// [`ProbeError::SegmentWriteDenied`] when arming fails.
    pub fn run_clean<T>(
        machine: &mut Machine,
        mut measurement: impl FnMut(&mut Machine) -> T,
    ) -> Result<Option<T>, ProbeError> {
        let guard = InterruptGuard::arm(machine)?;
        let value = measurement(machine);
        Ok(guard.finish(machine).then_some(value))
    }

    /// Repeats `measurement` until `wanted` clean samples are collected or
    /// `max_attempts` is exhausted.
    ///
    /// # Errors
    ///
    /// [`ProbeError::SegmentWriteDenied`] when arming fails;
    /// [`ProbeError::InsufficientSamples`] when the attempt budget ran out
    /// first.
    pub fn collect_clean<T>(
        machine: &mut Machine,
        wanted: usize,
        max_attempts: usize,
        mut measurement: impl FnMut(&mut Machine) -> T,
    ) -> Result<Vec<T>, ProbeError> {
        let mut out = Vec::with_capacity(wanted);
        for _ in 0..max_attempts {
            if out.len() == wanted {
                break;
            }
            if let Some(v) = Self::run_clean(machine, &mut measurement)? {
                out.push(v);
            }
        }
        if out.len() < wanted {
            return Err(ProbeError::InsufficientSamples {
                got: out.len(),
                needed: wanted,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irq::time::Ps;
    use segsim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default(), 0x6A4D)
    }

    #[test]
    fn short_window_is_usually_clean() {
        let mut m = machine();
        let mut clean = 0;
        for _ in 0..100 {
            let guard = InterruptGuard::arm(&mut m).unwrap();
            m.spin(100);
            if guard.finish(&mut m) {
                clean += 1;
            }
        }
        assert!(clean > 95, "tiny windows rarely catch interrupts: {clean}");
    }

    #[test]
    fn long_window_is_always_interrupted() {
        let mut m = machine();
        let guard = InterruptGuard::arm(&mut m).unwrap();
        // Spin well past one 4 ms timer period.
        let cycles = Ps::from_ms(20).cycles_at(m.current_freq_khz());
        m.spin(cycles);
        assert!(!guard.finish(&mut m), "20 ms at HZ=250 must be interrupted");
    }

    #[test]
    fn guard_agrees_with_ground_truth() {
        let mut m = machine();
        for _ in 0..200 {
            let t0 = m.now();
            let guard = InterruptGuard::arm(&mut m).unwrap();
            m.spin(50_000);
            let clean = guard.finish(&mut m);
            let t1 = m.now();
            let truth_clean = !m.ground_truth().any_in(t0, t1);
            assert_eq!(clean, truth_clean, "guard vs ground truth at {t0}");
        }
    }

    #[test]
    fn collect_clean_reaches_target() {
        let mut m = machine();
        let samples =
            InterruptGuard::collect_clean(&mut m, 50, 1000, |mm| mm.mem_access(0x8000).cycles)
                .unwrap();
        assert_eq!(samples.len(), 50);
    }

    #[test]
    fn collect_clean_reports_budget_exhaustion() {
        let mut m = machine();
        // Demand absurdly many clean samples of an always-interrupted window.
        let big_spin = Ps::from_ms(10).cycles_at(m.current_freq_khz());
        let err = InterruptGuard::collect_clean(&mut m, 5, 5, |mm| {
            mm.spin(big_spin);
        })
        .unwrap_err();
        assert!(matches!(err, ProbeError::InsufficientSamples { .. }));
    }

    #[test]
    fn run_clean_returns_value_when_uninterrupted() {
        let mut m = machine();
        let mut got_value = false;
        for _ in 0..20 {
            if let Some(v) = InterruptGuard::run_clean(&mut m, |mm| {
                mm.spin(10);
                42
            })
            .unwrap()
            {
                assert_eq!(v, 42);
                got_value = true;
                break;
            }
        }
        assert!(got_value);
    }
}
