//! `segscope` — the paper's primary contribution: probing fine-grained
//! interrupts via the architectural footprint of x86 segment protection,
//! with no timer and no procfs.
//!
//! # The technique (paper Section III)
//!
//! When an x86 CPU returns from kernel space to user space, it scrubs any
//! data-segment register holding a *null* selector to exactly `0`
//! (Algorithm 1 in the paper; implemented in the [`x86seg`] crate). The
//! null family includes the non-zero values `0x1`–`0x3`, which load
//! silently. A user process that parks such a value in `GS` and spins
//! checking the visible selector therefore detects every interrupt —
//! exactly once, with no threshold and no false positives.
//!
//! The crate provides, on top of the [`segsim`] machine simulator:
//!
//! * [`SegProbe`] — the probe itself, yielding per-interrupt `SegCnt`
//!   interval counts (paper Fig. 2, Eq. 1);
//! * [`InterruptGuard`] — SegScope as a noise filter for *other* side
//!   channels (used by the enhanced Spectral attack, paper Section IV-D);
//! * [`SegTimer`] — the clock-interpolation timer built from timer
//!   interrupt edges with Z-score filtering (paper Section III-C), in the
//!   denoising variants of paper Table VII;
//! * [`TimerEdgeClassifier`] / [`KindHistogram`] — separating interrupt
//!   kinds by SegCnt statistics (paper Fig. 6);
//! * [`DeliveryAudit`] — reconciliation of observed samples against the
//!   simulator's ground truth and fault log, turning injected delivery
//!   faults (dropped/duplicated/coalesced interrupts) into a typed
//!   verdict instead of a wrong-but-confident count;
//! * [`baseline`] — the timer-based probing techniques SegScope is
//!   compared against: [`TsJumpProber`] (timestamp jumps),
//!   [`LoopCountProber`] (low-resolution loop counting), and
//!   [`CountingThreadTimer`] (SMT counting thread).
//!
//! # Quick start
//!
//! ```
//! use segscope::SegProbe;
//! use segsim::{Machine, MachineConfig};
//!
//! // An idle, isolated core of the paper's Xiaomi laptop.
//! let mut machine = Machine::new(MachineConfig::xiaomi_air13(), 2024);
//! let mut probe = SegProbe::new();
//! let samples = probe.probe_n(&mut machine, 100)?;
//! // Every delivered interrupt was observed — compare with ground truth.
//! assert_eq!(samples.len(), machine.ground_truth().len());
//! # Ok::<(), segscope::ProbeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod baseline;
mod classify;
mod error;
mod guard;
mod probe;
mod stats;
mod timer;

pub use audit::{AuditVerdict, DeliveryAudit, TraceReconciliation};
pub use baseline::{CountingThreadTimer, LoopCountProber, TsJumpProber};
pub use classify::{KindHistogram, TimerEdgeClassifier};
pub use error::ProbeError;
pub use guard::InterruptGuard;
pub use probe::{ProbeSample, SegProbe};
pub use stats::{mean, std_dev, z_score, ZScoreFilter};
pub use timer::{Denoise, MeasureStats, SegTimer, TimedRun};
