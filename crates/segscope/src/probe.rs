//! The SegScope probe: timer-free interrupt detection via the
//! segment-protection footprint, and SegCnt interval measurement
//! (paper Section III-B, Fig. 2).

use crate::error::ProbeError;
use irq::time::Ps;
use irq::InterruptKind;
use segsim::{Machine, SpanEnd};
use serde::{Deserialize, Serialize};
use x86seg::{PrivilegeLevel, Selector};

/// One probed interrupt interval.
///
/// `segcnt` is the attacker-visible observation: the number of check-loop
/// iterations executed between two consecutive interrupts (the time proxy
/// of paper Eq. 1). The remaining fields are simulator-side metadata used
/// by experiments for ground-truth accounting; attacker logic must not
/// consult them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeSample {
    /// Loop iterations until the footprint appeared (attacker-visible).
    pub segcnt: u64,
    /// Ground truth: the interrupt kind that ended the interval.
    pub kind: InterruptKind,
    /// Ground truth: user-mode cycles the interval contained.
    pub user_cycles: f64,
    /// Ground truth: wall-clock start of the interval.
    pub started_at: Ps,
    /// Ground truth: wall-clock end (the interrupt delivery instant plus
    /// its kernel span).
    pub ended_at: Ps,
}

/// The SegScope probe.
///
/// Plants a non-zero null selector (`0x1`–`0x3`) in GS and detects
/// interrupts purely from the selector value being scrubbed by the
/// kernel→user return (Algorithm 1). No timestamp instruction, no procfs.
///
/// ```
/// use segscope::SegProbe;
/// use segsim::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::default(), 7);
/// let mut probe = SegProbe::new();
/// let samples = probe.probe_n(&mut m, 10)?;
/// assert_eq!(samples.len(), 10);
/// assert!(samples.iter().all(|s| s.segcnt > 0));
/// # Ok::<(), segscope::ProbeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegProbe {
    marker: Selector,
}

impl SegProbe {
    /// A probe using the default marker `0x1`.
    #[must_use]
    pub fn new() -> Self {
        SegProbe::with_marker(Selector::null_with_rpl(PrivilegeLevel::Ring1))
    }

    /// A probe using a specific non-zero null selector.
    ///
    /// # Panics
    ///
    /// Panics if `marker` is not a non-zero null selector — any other
    /// value either faults on load or leaves no observable footprint.
    #[must_use]
    pub fn with_marker(marker: Selector) -> Self {
        assert!(
            marker.is_nonzero_null(),
            "SegScope marker must be a non-zero null selector (0x1..=0x3), got {marker}"
        );
        SegProbe { marker }
    }

    /// The marker selector in use.
    #[must_use]
    pub fn marker(&self) -> Selector {
        self.marker
    }

    /// Probes one interrupt: plants the marker, spins checking the
    /// selector, and returns when the footprint appears.
    ///
    /// The returned `segcnt` is the number of check-loop iterations — the
    /// paper's SegCnt. A [`ProbeError::MitigatedMachine`] is reported if
    /// the machine preserves selectors (the probe would spin forever); a
    /// bounded `max_wait` guards that detection.
    ///
    /// # Errors
    ///
    /// [`ProbeError::SegmentWriteDenied`] when the machine restricts
    /// segment-register writes; [`ProbeError::MitigatedMachine`] when no
    /// footprint appeared within `max_wait`.
    pub fn probe_once_bounded(
        &mut self,
        machine: &mut Machine,
        max_wait: Ps,
    ) -> Result<ProbeSample, ProbeError> {
        machine
            .wrgs(self.marker)
            .map_err(|_| ProbeError::SegmentWriteDenied)?;
        let started_at = machine.now();
        let deadline = started_at.checked_add(max_wait).unwrap_or(Ps::MAX);
        let mut user_cycles = 0.0f64;
        loop {
            let span = machine.run_user_until(deadline);
            user_cycles += span.cycles;
            match span.ended_by {
                SpanEnd::Interrupt(irq) => {
                    // The check itself is the loop body: if the selector
                    // changed, the interval ended. A concurrent process
                    // may have reloaded GS with a *valid* selector — any
                    // change counts (paper Section III-B note).
                    let current = machine.rdgs();
                    if current != self.marker {
                        let segcnt =
                            (user_cycles / machine.probe_iter_cycles()).round().max(1.0) as u64;
                        let ended_at = machine.now();
                        if let Some(sink) = machine.trace_sink_mut() {
                            sink.emit(
                                ended_at.as_ps(),
                                obs::EventKind::ProbeSample {
                                    segcnt,
                                    irq: irq.kind.into(),
                                },
                            );
                            sink.metrics.incr("probe.samples", 1);
                            sink.metrics.observe("probe.segcnt", segcnt);
                            sink.metrics.phase(
                                "probe.interval",
                                started_at.as_ps(),
                                ended_at.as_ps(),
                            );
                        }
                        return Ok(ProbeSample {
                            segcnt,
                            kind: irq.kind,
                            user_cycles,
                            started_at,
                            ended_at,
                        });
                    }
                    // Footprint suppressed (mitigated machine): keep
                    // spinning until the deadline proves it.
                }
                SpanEnd::Deadline => return Err(ProbeError::MitigatedMachine),
            }
        }
    }

    /// Probes one interrupt with a 10-second guard (far beyond any real
    /// inter-interrupt gap at HZ ≥ 100).
    ///
    /// # Errors
    ///
    /// See [`SegProbe::probe_once_bounded`].
    pub fn probe_once(&mut self, machine: &mut Machine) -> Result<ProbeSample, ProbeError> {
        self.probe_once_bounded(machine, Ps::from_secs(10))
    }

    /// Probes `n` consecutive interrupts into a caller-owned buffer,
    /// clearing it first.
    ///
    /// This is the zero-allocation core of [`probe_n`](Self::probe_n):
    /// trial loops that probe repeatedly reuse one buffer instead of
    /// allocating a fresh `Vec<ProbeSample>` per batch.
    ///
    /// # Errors
    ///
    /// See [`SegProbe::probe_once_bounded`]. On error, samples collected
    /// before the failure remain in `out`.
    #[must_use = "on error, partial samples remain in `out`"]
    pub fn probe_n_into(
        &mut self,
        machine: &mut Machine,
        n: usize,
        out: &mut Vec<ProbeSample>,
    ) -> Result<(), ProbeError> {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.probe_once(machine)?);
        }
        Ok(())
    }

    /// Probes `n` consecutive interrupts.
    ///
    /// # Errors
    ///
    /// See [`SegProbe::probe_once_bounded`].
    pub fn probe_n(
        &mut self,
        machine: &mut Machine,
        n: usize,
    ) -> Result<Vec<ProbeSample>, ProbeError> {
        let mut out = Vec::new();
        self.probe_n_into(machine, n, &mut out)?;
        Ok(out)
    }

    /// Probes for a wall-clock duration into a caller-owned buffer,
    /// clearing it first (the reusable-buffer core of
    /// [`probe_for`](Self::probe_for)).
    ///
    /// The deadline is `machine.now() + duration` computed with
    /// [`Ps::checked_add`]: when the sum would overflow — a duration at
    /// or near [`Ps::MAX`] on a machine that has already advanced — the
    /// deadline saturates to [`Ps::MAX`] instead of wrapping or
    /// panicking, turning an overflowing window into "probe until the
    /// clock's end of time". The same guard protects the per-sample
    /// bound handed to [`probe_once_bounded`](Self::probe_once_bounded).
    ///
    /// # Errors
    ///
    /// See [`SegProbe::probe_once_bounded`]. On error, samples collected
    /// before the failure remain in `out`.
    #[must_use = "on error, partial samples remain in `out`"]
    pub fn probe_for_into(
        &mut self,
        machine: &mut Machine,
        duration: Ps,
        out: &mut Vec<ProbeSample>,
    ) -> Result<(), ProbeError> {
        out.clear();
        // Saturate instead of overflowing for near-`Ps::MAX` durations
        // (mirrors the guard in `probe_once_bounded`).
        let deadline = machine.now().checked_add(duration).unwrap_or(Ps::MAX);
        while machine.now() < deadline {
            let remaining = deadline.saturating_sub(machine.now());
            match self.probe_once_bounded(machine, remaining) {
                Ok(sample) => out.push(sample),
                Err(ProbeError::MitigatedMachine) => break, // window exhausted
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Probes for a wall-clock duration (used by the Table II comparison:
    /// "run each technique for 10 seconds"). Returns all samples whose
    /// interval *ended* within the window.
    ///
    /// # Overflow behaviour
    ///
    /// The window deadline `machine.now() + duration` saturates to
    /// [`Ps::MAX`] on overflow (`checked_add` + `unwrap_or`) rather than
    /// wrapping: an extreme `duration` means "probe as long as the clock
    /// can represent", never a panic or a deadline in the past. The
    /// single-interrupt guard in
    /// [`probe_once_bounded`](Self::probe_once_bounded) carries the same
    /// saturation, so even `Ps::MAX` itself is a safe bound:
    ///
    /// ```
    /// use irq::time::Ps;
    /// use segscope::SegProbe;
    /// use segsim::{Machine, MachineConfig};
    ///
    /// let mut m = Machine::new(MachineConfig::default(), 7);
    /// let mut probe = SegProbe::new();
    ///
    /// // A finite window: samples whose interval ended inside it.
    /// let samples = probe.probe_for(&mut m, Ps::from_ms(40))?;
    /// assert!(!samples.is_empty());
    ///
    /// // A saturating per-interrupt bound: `now() + Ps::MAX` would
    /// // overflow, but the deadline clamps to `Ps::MAX` and the probe
    /// // simply waits for the next interrupt — no panic, no wrap.
    /// let sample = probe.probe_once_bounded(&mut m, Ps::MAX)?;
    /// assert!(sample.segcnt > 0);
    /// # Ok::<(), segscope::ProbeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`SegProbe::probe_once_bounded`].
    pub fn probe_for(
        &mut self,
        machine: &mut Machine,
        duration: Ps,
    ) -> Result<Vec<ProbeSample>, ProbeError> {
        let mut out = Vec::new();
        self.probe_for_into(machine, duration, &mut out)?;
        Ok(out)
    }
}

impl Default for SegProbe {
    fn default() -> Self {
        SegProbe::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segsim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default(), 0xBEEF)
    }

    #[test]
    fn probe_detects_every_interrupt_exactly() {
        let mut m = machine();
        let mut probe = SegProbe::new();
        let before = m.ground_truth().len();
        let samples = probe.probe_n(&mut m, 50).unwrap();
        let after = m.ground_truth().len();
        // Every delivered interrupt during probing produced exactly one
        // sample: zero false positives, zero false negatives.
        assert_eq!(samples.len(), after - before);
    }

    #[test]
    fn segcnt_reflects_interval_length() {
        let mut m = machine();
        let mut probe = SegProbe::new();
        let samples = probe.probe_n(&mut m, 100).unwrap();
        let timer_cnts: Vec<f64> = samples
            .iter()
            .filter(|s| s.kind == InterruptKind::Timer)
            .map(|s| s.segcnt as f64)
            .collect();
        assert!(
            timer_cnts.len() > 90,
            "mostly timer interrupts on idle core"
        );
        // 4 ms at ~3.4 GHz and ~1.07 cycles/iter → ~1.2e7 iterations.
        let mu = crate::stats::mean(&timer_cnts);
        assert!((5.0e6..2.0e7).contains(&mu), "timer SegCnt mean {mu}");
        // Timer SegCnt concentrates: relative std well under 10%.
        let sd = crate::stats::std_dev(&timer_cnts);
        assert!(sd / mu < 0.1, "relative std {}", sd / mu);
    }

    #[test]
    fn marker_validation() {
        for raw in [0x1u16, 0x2, 0x3] {
            let probe = SegProbe::with_marker(Selector::from_bits(raw));
            assert_eq!(probe.marker().bits(), raw);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero null selector")]
    fn zero_marker_rejected() {
        let _ = SegProbe::with_marker(Selector::NULL);
    }

    #[test]
    #[should_panic(expected = "non-zero null selector")]
    fn valid_selector_marker_rejected() {
        let _ = SegProbe::with_marker(Selector::from_bits(0x2b));
    }

    #[test]
    fn mitigated_machine_is_detected() {
        let cfg = MachineConfig::default().with_preserve_selectors(true);
        let mut m = Machine::new(cfg, 1);
        let mut probe = SegProbe::new();
        let err = probe
            .probe_once_bounded(&mut m, Ps::from_ms(50))
            .unwrap_err();
        assert_eq!(err, ProbeError::MitigatedMachine);
    }

    #[test]
    fn restricted_writes_are_reported() {
        let cfg = MachineConfig::default().with_restricted_segment_writes(true);
        let mut m = Machine::new(cfg, 2);
        let mut probe = SegProbe::new();
        assert_eq!(
            probe.probe_once(&mut m).unwrap_err(),
            ProbeError::SegmentWriteDenied
        );
    }

    #[test]
    fn probe_for_counts_matched_to_ground_truth() {
        let mut m = machine();
        let mut probe = SegProbe::new();
        m.ground_truth_mut().clear();
        let samples = probe.probe_for(&mut m, Ps::from_secs(1)).unwrap();
        // 250 Hz + ~0.3 PMI/s: expect ~250 samples.
        assert!(
            (245..=260).contains(&samples.len()),
            "got {}",
            samples.len()
        );
    }

    #[test]
    fn probe_for_saturates_at_ps_max_instead_of_overflowing() {
        // Regression: `machine.now() + duration` used to overflow for
        // near-MAX durations once the machine had advanced past t = 0.
        let cfg = MachineConfig::default().with_restricted_segment_writes(true);
        let mut m = Machine::new(cfg, 3);
        m.spin(1_000_000); // now > 0, so now + Ps::MAX would overflow
        let mut probe = SegProbe::new();
        // The restricted machine fails fast; reaching the error (rather
        // than panicking on the deadline arithmetic) is the assertion.
        assert_eq!(
            probe.probe_for(&mut m, Ps::MAX).unwrap_err(),
            ProbeError::SegmentWriteDenied
        );
        let mut buf = Vec::new();
        assert_eq!(
            probe.probe_for_into(&mut m, Ps::MAX, &mut buf).unwrap_err(),
            ProbeError::SegmentWriteDenied
        );
    }

    #[test]
    fn probe_n_into_reuses_buffer_and_matches_probe_n() {
        let mut m1 = machine();
        let mut m2 = machine();
        let mut p1 = SegProbe::new();
        let mut p2 = SegProbe::new();
        let mut buf = Vec::new();
        for _ in 0..3 {
            let fresh = p1.probe_n(&mut m1, 10).unwrap();
            p2.probe_n_into(&mut m2, 10, &mut buf).unwrap();
            assert_eq!(fresh, buf, "identical machines, identical samples");
        }
        let cap = buf.capacity();
        p2.probe_n_into(&mut m2, 10, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap, "steady-state batches do not realloc");
    }

    #[test]
    fn probe_for_into_matches_probe_for() {
        let mut m1 = machine();
        let mut m2 = machine();
        let mut p1 = SegProbe::new();
        let mut p2 = SegProbe::new();
        let fresh = p1.probe_for(&mut m1, Ps::from_ms(100)).unwrap();
        let mut buf = vec![fresh[0]]; // non-empty: `_into` must clear it
        p2.probe_for_into(&mut m2, Ps::from_ms(100), &mut buf)
            .unwrap();
        assert_eq!(fresh, buf);
    }

    #[test]
    fn probe_survives_gs_reload_by_other_process() {
        use segsim::CoResident;
        let mut m = machine();
        m.set_co_resident(Some(CoResident {
            preempt_every_ticks: 1,
            slice: Ps::from_us(200),
            gs_reload: Some(x86seg::DescriptorTables::user_data_selector()),
            gs_reload_prob: 1.0,
        }));
        let mut probe = SegProbe::new();
        // Every timer interval still ends in a detected change.
        let samples = probe.probe_n(&mut m, 20).unwrap();
        assert_eq!(samples.len(), 20);
    }
}
