//! Z-score statistics used by the SegScope timer (paper Eq. 2).

use serde::{Deserialize, Serialize};

/// Mean of a slice (0 when empty).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice (0 when fewer than 2 samples).
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The Z-score of `x` against a mean and standard deviation (paper Eq. 2).
/// Returns 0 when the deviation is zero.
#[must_use]
pub fn z_score(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma == 0.0 {
        0.0
    } else {
        (x - mu) / sigma
    }
}

/// A fitted Z-score filter: retains samples within `band` standard
/// deviations of the mean.
///
/// The paper filters SegCnt with `band = 2.0` to retain timer-interrupt
/// samples (concentrated) and drop other interrupt kinds (dispersed low
/// outliers) — see paper Fig. 6 and Section III-C.
///
/// ```
/// let samples = [10.0, 10.2, 9.9, 10.1, 3.0, 10.0];
/// let filter = segscope::ZScoreFilter::fit(&samples, 2.0);
/// assert!(filter.retains(10.05));
/// assert!(!filter.retains(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZScoreFilter {
    mu: f64,
    sigma: f64,
    band: f64,
}

impl ZScoreFilter {
    /// Fits the filter to a sample set.
    #[must_use]
    pub fn fit(samples: &[f64], band: f64) -> Self {
        ZScoreFilter {
            mu: mean(samples),
            sigma: std_dev(samples),
            band,
        }
    }

    /// Constructs a filter from explicit parameters.
    #[must_use]
    pub fn new(mu: f64, sigma: f64, band: f64) -> Self {
        ZScoreFilter { mu, sigma, band }
    }

    /// The fitted mean.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The fitted standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Whether `x` falls within the retention band.
    #[must_use]
    pub fn retains(&self, x: f64) -> bool {
        z_score(x, self.mu, self.sigma).abs() <= self.band
    }

    /// Retains the in-band subset of `samples`, preserving order.
    #[must_use]
    pub fn filter(&self, samples: &[f64]) -> Vec<f64> {
        samples
            .iter()
            .copied()
            .filter(|&x| self.retains(x))
            .collect()
    }

    /// Iteratively re-fits on the retained subset until the retained set
    /// (nearly) stops shrinking — losing less than 2 % of samples in a
    /// round ends the iteration, so a clean Gaussian cluster is not
    /// whittled down by its own tails. Robustifies the fit when outliers
    /// are frequent enough to inflate the initial sigma.
    #[must_use]
    pub fn fit_iterative(samples: &[f64], band: f64, max_rounds: usize) -> Self {
        let mut kept: Vec<f64> = samples.to_vec();
        let mut filter = ZScoreFilter::fit(&kept, band);
        for _ in 0..max_rounds {
            let next = filter.filter(&kept);
            let converged = next.len() + next.len() / 50 >= kept.len();
            if next.is_empty() || converged {
                break;
            }
            kept = next;
            filter = ZScoreFilter::fit(&kept, band);
        }
        filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(z_score(9.0, 5.0, 2.0), 2.0);
        assert_eq!(z_score(1.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn band_two_matches_paper() {
        let xs = [10.0, 10.5, 9.5, 10.0, 10.2, 9.8];
        let f = ZScoreFilter::fit(&xs, 2.0);
        // All original samples are within 2 sigma here.
        assert_eq!(f.filter(&xs).len(), xs.len());
        // A value far below (a resched-interrupt SegCnt) is dropped.
        assert!(!f.retains(2.0));
    }

    #[test]
    fn iterative_fit_tightens_around_mode() {
        // 90% cluster at ~100, 10% outliers at ~10.
        let mut xs: Vec<f64> = (0..90).map(|i| 100.0 + (i % 7) as f64 * 0.1).collect();
        xs.extend((0..10).map(|i| 10.0 + i as f64));
        let single = ZScoreFilter::fit(&xs, 2.0);
        let iterative = ZScoreFilter::fit_iterative(&xs, 2.0, 8);
        assert!(iterative.sigma() < single.sigma());
        assert!(iterative.retains(100.3));
        assert!(!iterative.retains(19.0));
    }

    #[test]
    fn explicit_construction() {
        let f = ZScoreFilter::new(50.0, 5.0, 2.0);
        assert!(f.retains(59.9));
        assert!(!f.retains(60.1));
        assert_eq!(f.mu(), 50.0);
        assert_eq!(f.sigma(), 5.0);
    }
}
