//! The SegScope-based timer: clock interpolation between timer-interrupt
//! edges (paper Section III-C, Fig. 7), with the denoising variants of
//! paper Table VII.

use crate::error::ProbeError;
use crate::probe::SegProbe;
use crate::stats::{self, ZScoreFilter};
use segsim::Machine;
use serde::{Deserialize, Serialize};

/// Denoising strategy for the SegScope timer (the rows of paper
/// Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Denoise {
    /// No denoising: a single raw estimate per measurement.
    None,
    /// Z-score filtering of repeated estimates (the paper's default).
    #[default]
    ZScore,
    /// Frequency normalization via `scaling_cur_freq` only.
    Freq,
    /// Both Z-score filtering and frequency normalization.
    ZScoreAndFreq,
}

impl Denoise {
    /// Whether Z-score filtering is applied to repeated estimates.
    #[must_use]
    pub fn uses_zscore(self) -> bool {
        matches!(self, Denoise::ZScore | Denoise::ZScoreAndFreq)
    }

    /// Whether SegCnt values are normalized by the observed frequency.
    #[must_use]
    pub fn uses_freq(self) -> bool {
        matches!(self, Denoise::Freq | Denoise::ZScoreAndFreq)
    }
}

/// Calibration state of the SegScope timer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Calibration {
    /// Mean SegCnt of a full timer-interrupt interval (normalized if the
    /// denoise mode uses frequency).
    mu: f64,
    /// Std of the same.
    sigma: f64,
    /// The edge filter retaining timer-interval samples.
    filter: ZScoreFilter,
    /// Reference frequency used for normalization, kHz.
    ref_khz: u64,
}

/// One timed measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedRun<T> {
    /// The measured code's return value.
    pub value: T,
    /// Estimated duration in SegCnt *ticks* (≈ one check-loop iteration
    /// each, i.e. ~1 CPU cycle on the Table I machines). Durations longer
    /// than a timer period alias modulo the period (the paper's stated
    /// limitation).
    pub ticks: f64,
}

/// Aggregate statistics over repeated timed measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasureStats {
    /// Mean estimate, ticks.
    pub mean_ticks: f64,
    /// Standard deviation of retained estimates, ticks.
    pub std_ticks: f64,
    /// Number of estimates retained after filtering.
    pub kept: usize,
    /// Number of estimates taken.
    pub total: usize,
}

/// A fine-grained timer built purely from SegScope interrupt probing.
///
/// The APIC timer fires every `1/HZ` seconds; those edges bound intervals
/// whose SegCnt is tightly concentrated (paper Fig. 6). After calibrating
/// the full-interval SegCnt `mu`, the attacker times a code fragment by
/// (1) syncing to an edge, (2) running the fragment, (3) counting SegCnt
/// until the next edge: the fragment consumed `mu - tail` ticks (paper
/// Fig. 7).
///
/// ```no_run
/// use segscope::{SegTimer, Denoise};
/// use segsim::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::default(), 5);
/// let mut timer = SegTimer::calibrate(&mut m, 200, Denoise::ZScore)?;
/// let stats = timer.measure(&mut m, 10, |mm| { mm.spin(100_000); })?;
/// println!("~{} ticks", stats.mean_ticks);
/// # Ok::<(), segscope::ProbeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegTimer {
    probe: SegProbe,
    calib: Calibration,
    denoise: Denoise,
}

impl SegTimer {
    /// Calibrates the timer by probing `samples` interrupt intervals and
    /// fitting the timer-edge filter.
    ///
    /// # Errors
    ///
    /// Propagates probe errors; [`ProbeError::InsufficientSamples`] if
    /// fewer than 16 samples survive filtering.
    pub fn calibrate(
        machine: &mut Machine,
        samples: usize,
        denoise: Denoise,
    ) -> Result<Self, ProbeError> {
        let mut probe = SegProbe::new();
        let calib_start = machine.now();
        let ref_khz = machine.scaling_cur_freq();
        let mut values = Vec::with_capacity(samples);
        for _ in 0..samples {
            let s = probe.probe_once(machine)?;
            let mut v = s.segcnt as f64;
            if denoise.uses_freq() {
                let cur = machine.scaling_cur_freq().max(1);
                v *= ref_khz as f64 / cur as f64;
            }
            values.push(v);
        }
        let filter = ZScoreFilter::fit_iterative(&values, 2.0, 8);
        let kept = filter.filter(&values);
        let calib_end = machine.now();
        if let Some(sink) = machine.trace_sink_mut() {
            sink.metrics
                .phase("timer.calibrate", calib_start.as_ps(), calib_end.as_ps());
            sink.metrics.incr("timer.calibrations", 1);
        }
        if kept.len() < 16 {
            return Err(ProbeError::InsufficientSamples {
                got: kept.len(),
                needed: 16,
            });
        }
        Ok(SegTimer {
            probe,
            calib: Calibration {
                mu: stats::mean(&kept),
                sigma: stats::std_dev(&kept),
                filter,
                ref_khz,
            },
            denoise,
        })
    }

    /// The calibrated full-interval SegCnt (ticks per timer period).
    #[must_use]
    pub fn interval_ticks(&self) -> f64 {
        self.calib.mu
    }

    /// The calibrated interval standard deviation.
    #[must_use]
    pub fn interval_sigma(&self) -> f64 {
        self.calib.sigma
    }

    /// The denoising mode.
    #[must_use]
    pub fn denoise(&self) -> Denoise {
        self.denoise
    }

    /// Synchronizes to a timer edge: probes intervals until one matches
    /// the calibrated full-interval statistics (its terminating edge is a
    /// timer tick with high probability).
    ///
    /// # Errors
    ///
    /// Propagates probe errors; gives up (with the last sample accepted)
    /// after 32 attempts so a pathological interrupt storm cannot hang the
    /// caller.
    pub fn sync_to_edge(&mut self, machine: &mut Machine) -> Result<(), ProbeError> {
        for _ in 0..32 {
            let s = self.probe.probe_once(machine)?;
            if self.calib.filter.retains(self.normalize(machine, s.segcnt)) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Times one execution of `f` (paper Fig. 7): syncs to an edge, runs
    /// `f`, counts the tail SegCnt to the next edge, and reports
    /// `mu - tail` ticks (wrapped into `[0, mu)`).
    ///
    /// # Errors
    ///
    /// Propagates probe errors.
    pub fn time<T>(
        &mut self,
        machine: &mut Machine,
        f: impl FnOnce(&mut Machine) -> T,
    ) -> Result<TimedRun<T>, ProbeError> {
        self.sync_to_edge(machine)?;
        let value = f(machine);
        let tail = self.probe.probe_once(machine)?;
        let tail_ticks = self.normalize(machine, tail.segcnt);
        // Centered remainder: jitter on a near-zero-duration measurement
        // can push `tail` past `mu`; wrapping that to ~mu would turn a
        // fast operation into an apparently period-long one. Values land
        // in [-mu/2, 3mu/2) centred so tiny durations may read slightly
        // negative — harmless for comparisons.
        let mu = self.calib.mu.max(1.0);
        let raw = mu - tail_ticks;
        let ticks = (raw + mu / 2.0).rem_euclid(mu) - mu / 2.0;
        Ok(TimedRun { value, ticks })
    }

    /// Repeats [`SegTimer::time`] `repeats` times and aggregates, applying
    /// the configured denoising.
    ///
    /// # Errors
    ///
    /// Propagates probe errors; [`ProbeError::InsufficientSamples`] if
    /// filtering discards everything.
    pub fn measure(
        &mut self,
        machine: &mut Machine,
        repeats: usize,
        mut f: impl FnMut(&mut Machine),
    ) -> Result<MeasureStats, ProbeError> {
        let measure_start = machine.now();
        let mut estimates = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let run = self.time(machine, &mut f)?;
            estimates.push(run.ticks);
        }
        let measure_end = machine.now();
        if let Some(sink) = machine.trace_sink_mut() {
            sink.metrics
                .phase("timer.measure", measure_start.as_ps(), measure_end.as_ps());
            sink.metrics.incr("timer.measurements", repeats as u64);
        }
        let kept: Vec<f64> = if self.denoise.uses_zscore() && estimates.len() >= 4 {
            let filter = ZScoreFilter::fit(&estimates, 2.0);
            let kept = filter.filter(&estimates);
            if kept.is_empty() {
                estimates.clone()
            } else {
                kept
            }
        } else {
            estimates.clone()
        };
        if kept.is_empty() {
            return Err(ProbeError::InsufficientSamples { got: 0, needed: 1 });
        }
        Ok(MeasureStats {
            mean_ticks: stats::mean(&kept),
            std_ticks: stats::std_dev(&kept),
            kept: kept.len(),
            total: estimates.len(),
        })
    }

    fn normalize(&self, machine: &mut Machine, segcnt: u64) -> f64 {
        let mut v = segcnt as f64;
        if self.denoise.uses_freq() {
            let cur = machine.scaling_cur_freq().max(1);
            v *= self.calib.ref_khz as f64 / cur as f64;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segsim::MachineConfig;

    fn machine(seed: u64) -> Machine {
        Machine::new(MachineConfig::default(), seed)
    }

    /// Warm up the governor so the frequency is stable before calibrating
    /// (the paper's "warm-up" guidance).
    fn warmed(seed: u64) -> Machine {
        let mut m = machine(seed);
        m.spin(500_000_000);
        m
    }

    #[test]
    fn calibration_learns_the_timer_period() {
        let mut m = warmed(0x71);
        let timer = SegTimer::calibrate(&mut m, 150, Denoise::ZScore).unwrap();
        // Timer period 4 ms at ~3.4 GHz, ~1.075 cycles/iter:
        // mu ≈ 4e-3 * 3.4e9 / 1.075 ≈ 1.26e7.
        let mu = timer.interval_ticks();
        assert!((8.0e6..1.6e7).contains(&mu), "mu = {mu}");
        // Timer edges concentrate: sigma well below 5% of mu.
        assert!(
            timer.interval_sigma() / mu < 0.05,
            "sigma/mu = {}",
            timer.interval_sigma() / mu
        );
    }

    #[test]
    fn short_code_measures_near_its_cycle_cost() {
        let mut m = warmed(0x72);
        let mut timer = SegTimer::calibrate(&mut m, 200, Denoise::ZScore).unwrap();
        let spin_cycles = 1_000_000u64;
        let stats = timer
            .measure(&mut m, 30, |mm| mm.spin(spin_cycles))
            .unwrap();
        // One tick ≈ probe_iter_cycles cycles: expect ≈ spin/iter_cycles.
        let expected = spin_cycles as f64 / m.probe_iter_cycles();
        let rel = (stats.mean_ticks - expected).abs() / expected;
        assert!(
            rel < 0.35,
            "mean {} vs expected {expected} (rel {rel})",
            stats.mean_ticks
        );
    }

    #[test]
    fn longer_code_measures_larger() {
        let mut m = warmed(0x73);
        let mut timer = SegTimer::calibrate(&mut m, 200, Denoise::ZScore).unwrap();
        let small = timer.measure(&mut m, 20, |mm| mm.spin(200_000)).unwrap();
        let large = timer.measure(&mut m, 20, |mm| mm.spin(2_000_000)).unwrap();
        assert!(
            large.mean_ticks > small.mean_ticks * 2.0,
            "small {} vs large {}",
            small.mean_ticks,
            large.mean_ticks
        );
    }

    #[test]
    fn zscore_mode_filters_outliers() {
        let mut m = warmed(0x74);
        let mut timer = SegTimer::calibrate(&mut m, 200, Denoise::ZScore).unwrap();
        let stats = timer.measure(&mut m, 40, |mm| mm.spin(500_000)).unwrap();
        assert!(stats.kept <= stats.total);
        assert!(stats.kept >= stats.total / 2);
    }

    #[test]
    fn denoise_flags() {
        assert!(Denoise::ZScore.uses_zscore());
        assert!(!Denoise::ZScore.uses_freq());
        assert!(Denoise::Freq.uses_freq());
        assert!(!Denoise::None.uses_zscore());
        assert!(Denoise::ZScoreAndFreq.uses_zscore() && Denoise::ZScoreAndFreq.uses_freq());
    }

    #[test]
    fn aliasing_wraps_modulo_period() {
        let mut m = warmed(0x75);
        let mut timer = SegTimer::calibrate(&mut m, 150, Denoise::ZScore).unwrap();
        let period_cycles = (timer.interval_ticks() * m.probe_iter_cycles()) as u64;
        // Code 1.2x the period: measured ticks alias into the centered
        // window [-mu/2, mu/2).
        let run = timer
            .time(&mut m, |mm| mm.spin(period_cycles + period_cycles / 5))
            .unwrap();
        let half = timer.interval_ticks() / 2.0;
        assert!(
            run.ticks >= -half && run.ticks < half,
            "ticks {}",
            run.ticks
        );
    }
}
