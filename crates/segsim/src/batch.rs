//! Batched lockstep simulation: N independent machines advanced together.
//!
//! [`MachineBatch`] owns a vector of [`Machine`] lanes plus
//! struct-of-arrays mirrors of the hot scheduling state — lane clock,
//! cached next-interrupt head, governor frequency, visible GS selector —
//! in contiguous arrays. Lockstep drivers ([`wrgs_all`], [`spin_all`],
//! [`rdgs_all`], [`run_all_until`], …) advance every lane through the
//! same operation before moving on; between sweeps the dispatch loop
//! scans the mirror arrays (a handful of cache lines for dozens of
//! lanes) to decide which lanes still need service, instead of
//! pointer-chasing into each machine's fabric and governor.
//!
//! [`wrgs_all`]: MachineBatch::wrgs_all
//! [`spin_all`]: MachineBatch::spin_all
//! [`rdgs_all`]: MachineBatch::rdgs_all
//! [`run_all_until`]: MachineBatch::run_all_until
//!
//! # Lockstep invariants
//!
//! Two invariants make the batch safe to substitute for a loop of scalar
//! machines, and the differential tests (`tests/batch_lockstep.rs` in
//! this crate, `tests/batch_parity.rs` at the workspace root) hold it to
//! them:
//!
//! 1. **Per-lane RNG independence.** Every lane owns its own seeded RNG;
//!    no batch operation draws from a shared stream, skips a draw, or
//!    re-orders a lane's draws. A lane's delivery/fault/sample streams
//!    are bit-identical to the same `(config, seed)` pair run on a
//!    scalar [`Machine`], regardless of batch size or lane position.
//! 2. **Reset ≡ new.** Lanes are recycled between trials with
//!    [`Machine::reset`], which replays [`Machine::new`]'s boot draw
//!    order exactly while keeping the lane's heap allocations (cache
//!    arrays, ground-truth buffer). Trial outputs therefore do not
//!    depend on which lane — or which batch — a trial landed on, only
//!    on its `(config, seed)`.
//!
//! Lane recycling is where the throughput comes from: a fresh
//! [`Machine::new`] pays for the full cache hierarchy (the LLC set array
//! alone is ~400 KB) on every trial, while [`reset_lane`] bumps an epoch
//! counter and re-seeds.
//!
//! [`reset_lane`]: MachineBatch::reset_lane

use crate::config::MachineConfig;
use crate::core::{Machine, SpanEnd, UserSpan};
use crate::error::SimError;
use irq::time::Ps;
use x86seg::{DataSegReg, Selector};

/// N independent simulated machines driven in lockstep, with
/// struct-of-arrays mirrors of each lane's hot scheduling state.
///
/// # Example
///
/// ```
/// use segsim::{MachineBatch, MachineConfig};
/// use x86seg::Selector;
///
/// let mut batch = MachineBatch::new_uniform(&MachineConfig::default(), &[1, 2, 3, 4]);
/// batch.wrgs_all(Selector::from_bits(0x3)).unwrap();
/// batch.spin_all(10_000);
/// // No interrupt this early: every lane still holds the marker.
/// assert!(batch.rdgs_all().iter().all(|&gs| gs == 0x3));
/// ```
#[derive(Debug, Clone)]
pub struct MachineBatch {
    lanes: Vec<Machine>,
    /// SoA mirror: each lane's simulated clock.
    now: Vec<Ps>,
    /// SoA mirror: each lane's cached next-interrupt arrival
    /// (`Ps::MAX` when the lane's fabric is idle).
    next_irq: Vec<Ps>,
    /// SoA mirror: each lane's instantaneous governor frequency, kHz.
    freq_khz: Vec<u64>,
    /// SoA mirror: each lane's visible GS selector bits.
    gs: Vec<u16>,
}

impl MachineBatch {
    /// Builds a batch with one lane per `(config, seed)` pair.
    #[must_use]
    pub fn from_configs<I: IntoIterator<Item = (MachineConfig, u64)>>(lanes: I) -> Self {
        let lanes: Vec<Machine> = lanes
            .into_iter()
            .map(|(config, seed)| Machine::new(config, seed))
            .collect();
        let n = lanes.len();
        let mut batch = MachineBatch {
            lanes,
            now: vec![Ps::ZERO; n],
            next_irq: vec![Ps::MAX; n],
            freq_khz: vec![0; n],
            gs: vec![0; n],
        };
        for i in 0..n {
            batch.refresh(i);
        }
        batch
    }

    /// Builds a batch of identically-configured lanes, one per seed.
    #[must_use]
    pub fn new_uniform(config: &MachineConfig, seeds: &[u64]) -> Self {
        MachineBatch::from_configs(seeds.iter().map(|&s| (config.clone(), s)))
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the batch has no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Read access to one lane.
    #[must_use]
    pub fn lane(&self, i: usize) -> &Machine {
        &self.lanes[i]
    }

    /// Read access to every lane.
    #[must_use]
    pub fn lanes(&self) -> &[Machine] {
        &self.lanes
    }

    /// Runs `f` against one lane mutably, then refreshes that lane's
    /// mirror entries. All per-lane mutation goes through here so the
    /// struct-of-arrays views can never go stale.
    pub fn with_lane_mut<T>(&mut self, i: usize, f: impl FnOnce(&mut Machine) -> T) -> T {
        let out = f(&mut self.lanes[i]);
        self.refresh(i);
        out
    }

    /// Recycles lane `i` for a new trial: in-place [`Machine::reset`]
    /// (bit-identical to a fresh `Machine::new(config, seed)`, but
    /// reusing the lane's allocations) plus a mirror refresh.
    pub fn reset_lane(&mut self, i: usize, config: MachineConfig, seed: u64) {
        self.lanes[i].reset(config, seed);
        self.refresh(i);
    }

    /// Re-syncs lane `i`'s mirror entries from the machine itself.
    fn refresh(&mut self, i: usize) {
        let m = &self.lanes[i];
        self.now[i] = m.now();
        self.next_irq[i] = m.next_interrupt_at().unwrap_or(Ps::MAX);
        self.freq_khz[i] = m.current_freq_khz();
        self.gs[i] = m.peek_seg(DataSegReg::Gs).bits();
    }

    // ------------------------------------------------------------------
    // SoA views (simulator API: reads of the mirrors, no lane mutation).
    // ------------------------------------------------------------------

    /// Each lane's simulated clock.
    #[must_use]
    pub fn nows(&self) -> &[Ps] {
        &self.now
    }

    /// Each lane's cached next-interrupt arrival (`Ps::MAX` = idle
    /// fabric). This is the array the dispatch sweeps scan.
    #[must_use]
    pub fn next_irqs(&self) -> &[Ps] {
        &self.next_irq
    }

    /// Each lane's instantaneous governor frequency, kHz.
    #[must_use]
    pub fn freqs_khz(&self) -> &[u64] {
        &self.freq_khz
    }

    /// Each lane's visible GS selector bits, as of the last operation.
    /// Unlike [`rdgs_all`](MachineBatch::rdgs_all) this is a free read of
    /// the mirror — it models no instruction and consumes no lane time.
    #[must_use]
    pub fn gs_selectors(&self) -> &[u16] {
        &self.gs
    }

    // ------------------------------------------------------------------
    // Lockstep drivers.
    // ------------------------------------------------------------------

    /// Executes `wrgs selector` on every lane (one probe-slot marker
    /// write, batched).
    ///
    /// # Errors
    ///
    /// Propagates the first lane's [`SimError`]; lanes after a failing
    /// lane are not written (mitigation configs fault deterministically,
    /// so in practice either every lane faults or none does).
    pub fn wrgs_all(&mut self, selector: Selector) -> Result<(), SimError> {
        for i in 0..self.lanes.len() {
            self.lanes[i].wrgs(selector)?;
            self.refresh(i);
        }
        Ok(())
    }

    /// Spins every lane for `cycles` guest cycles (interrupts delivered
    /// along the way, exactly as [`Machine::spin`] would).
    pub fn spin_all(&mut self, cycles: u64) {
        for i in 0..self.lanes.len() {
            self.lanes[i].spin(cycles);
            self.refresh(i);
        }
    }

    /// Executes `rdgs` on every lane (consuming lane time, exactly as
    /// the scalar probe's check would) and returns the refreshed
    /// selector mirror.
    pub fn rdgs_all(&mut self) -> &[u16] {
        for i in 0..self.lanes.len() {
            let sel = self.lanes[i].rdgs();
            self.gs[i] = sel.bits();
            let m = &self.lanes[i];
            self.now[i] = m.now();
            self.next_irq[i] = m.next_interrupt_at().unwrap_or(Ps::MAX);
            self.freq_khz[i] = m.current_freq_khz();
        }
        &self.gs
    }

    /// Advances every lane to the absolute deadline, delivering
    /// interrupts along the way, one user span per lane per sweep so the
    /// lanes stay temporally close (lockstep). Returns the total number
    /// of interrupts delivered across the batch.
    ///
    /// Between sweeps only the contiguous `now` mirror is scanned;
    /// finished lanes are skipped without touching their machine state
    /// at all — the amortized-dispatch half of the batching win.
    pub fn run_all_until(&mut self, deadline: Ps) -> u64 {
        let mut delivered = 0u64;
        loop {
            let mut any_active = false;
            for i in 0..self.lanes.len() {
                if self.now[i] >= deadline {
                    continue;
                }
                any_active = true;
                let span: UserSpan = self.lanes[i].run_user_until(deadline);
                if matches!(span.ended_by, SpanEnd::Interrupt(_)) {
                    delivered += 1;
                }
                self.refresh(i);
            }
            if !any_active {
                break;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    const SEEDS: [u64; 4] = [0xA1, 0xB2, 0xC3, 0xD4];

    fn scalar_lanes() -> Vec<Machine> {
        SEEDS
            .iter()
            .map(|&s| Machine::new(MachineConfig::default(), s))
            .collect()
    }

    #[test]
    fn lockstep_probe_matches_scalar_machines() {
        let mut batch = MachineBatch::new_uniform(&MachineConfig::default(), &SEEDS);
        let mut scalar = scalar_lanes();
        for _ in 0..200 {
            batch.wrgs_all(Selector::from_bits(0x3)).unwrap();
            batch.spin_all(25_000);
            let batched_gs: Vec<u16> = batch.rdgs_all().to_vec();
            for (m, &got) in scalar.iter_mut().zip(&batched_gs) {
                m.wrgs(Selector::from_bits(0x3)).unwrap();
                m.spin(25_000);
                assert_eq!(m.rdgs().bits(), got);
            }
        }
        for (i, m) in scalar.iter_mut().enumerate() {
            assert_eq!(m.now(), batch.nows()[i]);
            assert_eq!(m.kernel_entries(), batch.lane(i).kernel_entries());
            assert_eq!(
                m.ground_truth().records(),
                batch.lane(i).ground_truth().records()
            );
            assert_eq!(
                m.rng_mut().gen::<u64>(),
                batch.with_lane_mut(i, |lane| lane.rng_mut().gen::<u64>()),
                "lane {i} RNG diverged"
            );
        }
    }

    #[test]
    fn run_all_until_reaches_deadline_and_counts_deliveries() {
        let mut batch = MachineBatch::new_uniform(&MachineConfig::default(), &SEEDS);
        let delivered = batch.run_all_until(Ps::from_ms(100));
        // 250 Hz timer for 100 ms on four lanes: ~100 timer ticks plus
        // stochastic sources.
        assert!(delivered >= 80, "delivered {delivered}");
        assert!(batch.nows().iter().all(|&t| t >= Ps::from_ms(100)));
        // Mirrors agree with the machines they mirror.
        for i in 0..batch.len() {
            assert_eq!(batch.nows()[i], batch.lane(i).now());
            assert_eq!(
                batch.next_irqs()[i],
                batch.lane(i).next_interrupt_at().unwrap_or(Ps::MAX)
            );
            assert_eq!(batch.freqs_khz()[i], batch.lane(i).current_freq_khz());
        }
    }

    #[test]
    fn reset_lane_replays_a_fresh_machine() {
        let mut batch = MachineBatch::new_uniform(&MachineConfig::default(), &SEEDS);
        batch.run_all_until(Ps::from_ms(50));
        batch.reset_lane(2, MachineConfig::default(), 0x77);
        let mut fresh = Machine::new(MachineConfig::default(), 0x77);
        assert_eq!(batch.nows()[2], Ps::ZERO);
        for _ in 0..100 {
            let a = batch.with_lane_mut(2, |lane| {
                let deadline = lane.now() + Ps::from_us(500);
                lane.run_user_until(deadline)
            });
            let b = fresh.run_user_until(fresh.now() + Ps::from_us(500));
            assert_eq!(a, b);
        }
        assert_eq!(
            batch.with_lane_mut(2, |lane| lane.rng_mut().gen::<u64>()),
            fresh.rng_mut().gen::<u64>()
        );
    }

    #[test]
    fn mirrors_stay_in_sync_through_with_lane_mut() {
        let mut batch = MachineBatch::new_uniform(&MachineConfig::default(), &SEEDS);
        batch.with_lane_mut(1, |lane| {
            lane.wrgs(Selector::from_bits(0x3)).unwrap();
            lane.spin(5_000);
        });
        assert_eq!(batch.gs_selectors()[1], 0x3);
        assert_eq!(batch.nows()[1], batch.lane(1).now());
        assert!(batch.nows()[0] < batch.nows()[1]);
    }
}
