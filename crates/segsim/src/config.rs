//! Machine configurations, including presets for the paper's Table I
//! test machines.

use crate::freq::FreqConfig;
use irq::time::Ps;
use irq::{FaultPlan, HandlerCostModel};
use serde::{Deserialize, Serialize};

/// CPU vendor: selects which high-resolution timestamp instruction the
/// machine offers (`rdtsc` on Intel, `rdpru` on AMD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Intel CPUs: `rdtsc`/`rdtscp`.
    Intel,
    /// AMD CPUs: `rdpru` (and `rdtsc` with reduced resolution since Zen).
    Amd,
}

/// Hypervisor hosting the guest, if any (the Amazon instances of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hypervisor {
    /// Xen-based virtualization (t2 instances): adds steal-time noise.
    Xen,
    /// KVM/Nitro-based virtualization (c5 instances): lighter noise.
    Kvm,
}

/// Microarchitectural noise parameters for guest operations.
///
/// The tail component is what produces the false positives of the
/// timestamp-jump detector (paper Fig. 5a): even without an interrupt, a
/// loop iteration occasionally stalls long enough to cross an empirical
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Gaussian jitter applied per operation, cycles (std).
    pub op_jitter_std: f64,
    /// Probability any single operation hits a heavy-tail stall.
    pub tail_prob: f64,
    /// Scale of tail stalls, cycles (log-uniform between `tail_min` and
    /// `tail_max`).
    pub tail_min: f64,
    /// Upper bound of tail stalls, cycles.
    pub tail_max: f64,
    /// Extra multiplicative noise from an active SMT sibling (1.0 = none).
    pub smt_factor: f64,
    /// Mean user-side cycle loss after an interrupt (pipeline + cache
    /// refill once execution resumes). This is what makes a loop counter
    /// "plunge" in interrupted windows (paper Fig. 5b).
    pub refill_mean: f64,
    /// Standard deviation of the refill loss, cycles.
    pub refill_std: f64,
}

impl NoiseModel {
    /// A quiet physical machine.
    #[must_use]
    pub fn quiet() -> Self {
        NoiseModel {
            op_jitter_std: 1.2,
            tail_prob: 3.0e-7,
            tail_min: 600.0,
            tail_max: 24_000.0,
            smt_factor: 1.0,
            refill_mean: 10_000.0,
            refill_std: 1_500.0,
        }
    }

    /// A noisy virtualized instance (steal time, nested paging).
    #[must_use]
    pub fn virtualized() -> Self {
        NoiseModel {
            op_jitter_std: 2.5,
            tail_prob: 9.0e-7,
            tail_min: 900.0,
            tail_max: 60_000.0,
            smt_factor: 1.0,
            refill_mean: 18_000.0,
            refill_std: 4_000.0,
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::quiet()
    }
}

/// Interrupt-side countermeasure applied at the delivery boundary.
///
/// Defenses model what a *defender* (enclave runtime, kernel, or
/// trusted hypervisor) does about the kernel exits the attacker counts.
/// They are orthogonal to the victim-side mitigations already on
/// [`MachineConfig`] (`preserve_selectors`, `restrict_segment_writes`):
/// those remove the architectural footprint, defenses remove or drown
/// the *signal* in the exit stream itself.
///
/// `Defense::None` takes zero extra branches on the delivery path and
/// draws no RNG, so a machine configured without a defense reproduces
/// the pre-defense trace bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Defense {
    /// No countermeasure — the SegScope baseline.
    #[default]
    None,
    /// QuanShield-style self-destructing enclave: the first asynchronous
    /// enclave exit permanently tears the enclave down, so an
    /// interrupt-counting attacker gets at most one AEX worth of signal.
    QuanShield,
    /// Deterministic interrupt padding: synthetic kernel exits are
    /// inserted on a fixed time grid so that the exit stream the
    /// attacker observes is (nearly) independent of the victim's
    /// secret-dependent work. Pads are fully deterministic — they draw
    /// no RNG — so enabling padding shifts *when* real interrupts land
    /// relative to the victim but never perturbs the RNG stream order.
    Padding {
        /// Grid period: one synthetic exit every `quantum` of simulated
        /// time while the machine runs.
        quantum: Ps,
        /// Fixed kernel-side cost charged per synthetic exit.
        exit_cost: Ps,
    },
}

impl Defense {
    /// Stable names accepted by `Defense::by_name` (CLI `--defense`
    /// values, campaign defense-axis names).
    pub const NAMES: [&'static str; 3] = ["none", "quanshield", "padding"];

    /// Default padding grid: 4 synthetic exits per timer tick at HZ=250.
    #[must_use]
    pub fn default_padding() -> Self {
        Defense::Padding {
            quantum: Ps::from_ms(1),
            exit_cost: Ps::from_us(4),
        }
    }

    /// Looks a defense up by its stable name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Defense> {
        match name {
            "none" => Some(Defense::None),
            "quanshield" => Some(Defense::QuanShield),
            "padding" => Some(Defense::default_padding()),
            _ => None,
        }
    }

    /// The stable name (`NAMES` entry) of this defense.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Defense::None => "none",
            Defense::QuanShield => "quanshield",
            Defense::Padding { .. } => "padding",
        }
    }

    /// `true` for [`Defense::None`] — the delivery path's fast-path
    /// check.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, Defense::None)
    }
}

/// Full static configuration of a simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable machine name (Table I row).
    pub name: String,
    /// CPU vendor.
    pub vendor: Vendor,
    /// Hypervisor, if the machine is a cloud instance.
    pub hypervisor: Option<Hypervisor>,
    /// Frequency-domain configuration.
    pub freq: FreqConfig,
    /// APIC timer frequency (HZ), ticks per second.
    pub timer_hz: f64,
    /// Gaussian jitter on timer edges.
    pub timer_jitter: Ps,
    /// Interrupt-handler cost model.
    pub handler_model: HandlerCostModel,
    /// Rate of performance-monitoring interrupts on an idle isolated core
    /// (the paper's baseline observes ~3 per 10 s).
    pub pmi_rate_hz: f64,
    /// Rate of rescheduling IPIs on an idle isolated core.
    pub resched_rate_hz: f64,
    /// Cycles one iteration of the SegScope check loop costs (`k` in
    /// Eq. 1; fractional because the unrolled loop retires more than one
    /// increment per cycle on wide cores).
    pub probe_iter_cycles: f64,
    /// Cycles one iteration of a counting-thread increment costs on the
    /// SMT sibling.
    pub counting_thread_iter_cycles: f64,
    /// Relative noise of the counting thread (SMT port contention), as a
    /// fraction of elapsed cycles (std).
    pub counting_thread_noise: f64,
    /// Counting-thread disturbance per kernel entry on the sibling
    /// (counter increments, std per entry): faults and interrupts on the
    /// attacker's logical core stall the SMT sibling, which is why the
    /// counting thread collapses under the fault storm of direct-access
    /// KASLR probing (paper Table VII).
    pub counting_thread_kick: f64,
    /// Cost of `rdtsc`/`rdpru`, cycles.
    pub rdtsc_cycles: u64,
    /// Cost of writing a data-segment register, cycles.
    pub wrseg_cycles: u64,
    /// Cost of reading a data-segment register's visible selector, cycles.
    pub rdseg_cycles: u64,
    /// Cost of a coarse clock read (vDSO `clock_gettime`), cycles.
    pub clock_read_cycles: u64,
    /// Microarchitectural noise parameters.
    pub noise: NoiseModel,
    /// `CR4.TSD` set: unprivileged `rdtsc`/`rdpru` fault (the
    /// timer-constrained threat model).
    pub cr4_tsd: bool,
    /// Tickless (NOHZ_FULL) mode: the timer source is suppressed while a
    /// single task runs.
    pub tickless: bool,
    /// Future-architecture mitigation: `iret` preserves non-zero null
    /// selectors instead of clearing them (paper Section V).
    pub preserve_selectors: bool,
    /// Mitigation: unprivileged writes to data-segment registers fault.
    pub restrict_segment_writes: bool,
    /// Opt-in interrupt-path fault injection (conformance testing only;
    /// `None` preserves the machine's RNG stream bit-for-bit).
    pub fault_plan: Option<FaultPlan>,
    /// Interrupt-side countermeasure applied at the delivery boundary
    /// (`Defense::None` preserves the machine's trace and RNG stream
    /// bit-for-bit).
    pub defense: Defense,
}

impl MachineConfig {
    /// The frequency the invariant TSC ticks at, kHz.
    ///
    /// Modeled as the sustained single-core turbo frequency: under the
    /// attack's pinned spin load the core runs there, so one TSC tick ≈
    /// one executed cycle — which is what makes the Table III granularity
    /// ratios land near `1 / probe_iter_cycles`.
    #[must_use]
    pub fn tsc_khz(&self) -> u64 {
        self.freq.max_khz
    }

    /// Table I row 1: Xiaomi Air 13.3 — Intel Core i5-8250U, HZ=250.
    #[must_use]
    pub fn xiaomi_air13() -> Self {
        MachineConfig {
            name: "Xiaomi Air 13.3 (i5-8250U)".to_owned(),
            vendor: Vendor::Intel,
            hypervisor: None,
            freq: FreqConfig::mobile(1_600, 3_400),
            timer_hz: 250.0,
            timer_jitter: Ps::from_ns(80),
            handler_model: HandlerCostModel::paper_default(),
            pmi_rate_hz: 0.3,
            resched_rate_hz: 0.02,
            probe_iter_cycles: 1.075, // granularity ~0.93
            counting_thread_iter_cycles: 1.85,
            counting_thread_noise: 1.1e-5,
            counting_thread_kick: 1_500.0,
            rdtsc_cycles: 24,
            wrseg_cycles: 60,
            rdseg_cycles: 5,
            clock_read_cycles: 40,
            noise: NoiseModel {
                refill_std: 1_600.0,
                ..NoiseModel::quiet()
            },
            cr4_tsd: false,
            tickless: false,
            preserve_selectors: false,
            restrict_segment_writes: false,
            fault_plan: None,
            defense: Defense::None,
        }
    }

    /// Table I row 2: Lenovo Yangtian 4900v — Intel Core i7-4790, HZ=250.
    #[must_use]
    pub fn lenovo_yangtian() -> Self {
        MachineConfig {
            name: "Lenovo Yangtian 4900v (i7-4790)".to_owned(),
            vendor: Vendor::Intel,
            hypervisor: None,
            freq: FreqConfig::desktop(3_600, 4_000),
            timer_hz: 250.0,
            timer_jitter: Ps::from_ns(80),
            handler_model: HandlerCostModel::paper_default(),
            pmi_rate_hz: 0.3,
            resched_rate_hz: 0.02,
            probe_iter_cycles: 0.64, // granularity ~1.56
            counting_thread_iter_cycles: 1.08,
            counting_thread_noise: 6.0e-4,
            counting_thread_kick: 2_200.0,
            rdtsc_cycles: 24,
            wrseg_cycles: 55,
            rdseg_cycles: 5,
            clock_read_cycles: 38,
            noise: NoiseModel {
                refill_std: 5_000.0,
                ..NoiseModel::quiet()
            },
            cr4_tsd: false,
            tickless: false,
            preserve_selectors: false,
            restrict_segment_writes: false,
            fault_plan: None,
            defense: Defense::None,
        }
    }

    /// Table I row 3: Lenovo Savior Y9000P — Intel Core i9-12900H, HZ=250.
    /// The only Table I machine with `umonitor`/`umwait` (Spectral).
    #[must_use]
    pub fn lenovo_savior() -> Self {
        MachineConfig {
            name: "Lenovo Savior Y9000P (i9-12900H)".to_owned(),
            vendor: Vendor::Intel,
            hypervisor: None,
            freq: FreqConfig::mobile(2_500, 5_000),
            timer_hz: 250.0,
            timer_jitter: Ps::from_ns(80),
            handler_model: HandlerCostModel::paper_default(),
            pmi_rate_hz: 0.3,
            resched_rate_hz: 0.02,
            probe_iter_cycles: 0.9,
            counting_thread_iter_cycles: 1.0,
            counting_thread_noise: 8.0e-5,
            counting_thread_kick: 1_500.0,
            rdtsc_cycles: 22,
            wrseg_cycles: 50,
            rdseg_cycles: 4,
            clock_read_cycles: 35,
            noise: NoiseModel::quiet(),
            cr4_tsd: false,
            tickless: false,
            preserve_selectors: false,
            restrict_segment_writes: false,
            fault_plan: None,
            defense: Defense::None,
        }
    }

    /// Table I row 4: Honor Magicbook 16 Pro — AMD Ryzen 7 5800H, HZ=250.
    #[must_use]
    pub fn honor_magicbook() -> Self {
        MachineConfig {
            name: "Honor Magicbook 16 Pro (Ryzen 7 5800H)".to_owned(),
            vendor: Vendor::Amd,
            hypervisor: None,
            freq: FreqConfig::mobile(3_200, 4_400),
            timer_hz: 250.0,
            timer_jitter: Ps::from_ns(80),
            handler_model: HandlerCostModel::paper_default(),
            pmi_rate_hz: 0.3,
            resched_rate_hz: 0.02,
            probe_iter_cycles: 0.98, // granularity ~1.02
            counting_thread_iter_cycles: 0.94,
            counting_thread_noise: 1.3e-3,
            counting_thread_kick: 2_500.0,
            rdtsc_cycles: 28,
            wrseg_cycles: 62,
            rdseg_cycles: 5,
            clock_read_cycles: 42,
            noise: NoiseModel {
                refill_std: 6_000.0,
                ..NoiseModel::quiet()
            },
            cr4_tsd: false,
            tickless: false,
            preserve_selectors: false,
            restrict_segment_writes: false,
            fault_plan: None,
            defense: Defense::None,
        }
    }

    /// Table I row 5: Amazon t2.large (Xen) — Intel Xeon E5-2686, HZ=250.
    #[must_use]
    pub fn amazon_t2_large() -> Self {
        MachineConfig {
            name: "Amazon t2.large (Xeon E5-2686, Xen)".to_owned(),
            vendor: Vendor::Intel,
            hypervisor: Some(Hypervisor::Xen),
            freq: FreqConfig::desktop(2_300, 3_000),
            timer_hz: 250.0,
            timer_jitter: Ps::from_ns(400),
            handler_model: HandlerCostModel::paper_default(),
            pmi_rate_hz: 0.3,
            resched_rate_hz: 0.05,
            probe_iter_cycles: 0.675, // granularity ~1.48
            counting_thread_iter_cycles: 1.16,
            counting_thread_noise: 6.6e-3,
            counting_thread_kick: 7_000.0,
            rdtsc_cycles: 30,
            wrseg_cycles: 70,
            rdseg_cycles: 6,
            clock_read_cycles: 60,
            noise: NoiseModel {
                refill_std: 5_500.0,
                ..NoiseModel::virtualized()
            },
            cr4_tsd: false,
            tickless: false,
            preserve_selectors: false,
            restrict_segment_writes: false,
            fault_plan: None,
            defense: Defense::None,
        }
    }

    /// Table I row 6: Amazon c5.large (KVM) — Intel Xeon 8275CL, HZ=250.
    #[must_use]
    pub fn amazon_c5_large() -> Self {
        MachineConfig {
            name: "Amazon c5.large (Xeon 8275CL, KVM)".to_owned(),
            vendor: Vendor::Intel,
            hypervisor: Some(Hypervisor::Kvm),
            freq: FreqConfig::desktop(3_000, 3_600),
            timer_hz: 250.0,
            timer_jitter: Ps::from_ns(250),
            handler_model: HandlerCostModel::paper_default(),
            pmi_rate_hz: 0.3,
            resched_rate_hz: 0.04,
            probe_iter_cycles: 0.68, // granularity ~1.47
            counting_thread_iter_cycles: 1.19,
            counting_thread_noise: 3.7e-3,
            counting_thread_kick: 4_500.0,
            rdtsc_cycles: 26,
            wrseg_cycles: 64,
            rdseg_cycles: 5,
            clock_read_cycles: 50,
            noise: NoiseModel {
                refill_std: 3_000.0,
                ..NoiseModel::virtualized()
            },
            cr4_tsd: false,
            tickless: false,
            preserve_selectors: false,
            restrict_segment_writes: false,
            fault_plan: None,
            defense: Defense::None,
        }
    }

    /// All six Table I machines, in row order.
    #[must_use]
    pub fn table1() -> Vec<MachineConfig> {
        vec![
            MachineConfig::xiaomi_air13(),
            MachineConfig::lenovo_yangtian(),
            MachineConfig::lenovo_savior(),
            MachineConfig::honor_magicbook(),
            MachineConfig::amazon_t2_large(),
            MachineConfig::amazon_c5_large(),
        ]
    }

    /// Sets the APIC timer frequency (builder style).
    #[must_use]
    pub fn with_hz(mut self, hz: f64) -> Self {
        self.timer_hz = hz;
        self
    }

    /// Sets `CR4.TSD` (builder style): the timer-constrained threat model.
    #[must_use]
    pub fn with_cr4_tsd(mut self, tsd: bool) -> Self {
        self.cr4_tsd = tsd;
        self
    }

    /// Enables tickless (NOHZ_FULL) mode (builder style).
    #[must_use]
    pub fn with_tickless(mut self, tickless: bool) -> Self {
        self.tickless = tickless;
        self
    }

    /// Enables the future-architecture selector-preserving mitigation
    /// (builder style).
    #[must_use]
    pub fn with_preserve_selectors(mut self, preserve: bool) -> Self {
        self.preserve_selectors = preserve;
        self
    }

    /// Restricts unprivileged segment-register writes (builder style).
    #[must_use]
    pub fn with_restricted_segment_writes(mut self, restrict: bool) -> Self {
        self.restrict_segment_writes = restrict;
        self
    }

    /// Installs an interrupt-path fault-injection plan (builder style).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs an interrupt-side countermeasure (builder style).
    #[must_use]
    pub fn with_defense(mut self, defense: Defense) -> Self {
        self.defense = defense;
        self
    }
}

impl Default for MachineConfig {
    /// Defaults to the Xiaomi Air 13.3 (the paper's website-fingerprinting
    /// machine).
    fn default() -> Self {
        MachineConfig::xiaomi_air13()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_machines_with_unique_names() {
        let machines = MachineConfig::table1();
        assert_eq!(machines.len(), 6);
        let mut names: Vec<_> = machines.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
        assert!(
            machines.iter().all(|m| m.timer_hz == 250.0),
            "Table I: HZ=250"
        );
    }

    #[test]
    fn exactly_one_amd_machine() {
        let machines = MachineConfig::table1();
        let amd = machines.iter().filter(|m| m.vendor == Vendor::Amd).count();
        assert_eq!(amd, 1);
    }

    #[test]
    fn cloud_instances_are_virtualized() {
        assert_eq!(
            MachineConfig::amazon_t2_large().hypervisor,
            Some(Hypervisor::Xen)
        );
        assert_eq!(
            MachineConfig::amazon_c5_large().hypervisor,
            Some(Hypervisor::Kvm)
        );
        assert_eq!(MachineConfig::xiaomi_air13().hypervisor, None);
    }

    #[test]
    fn builders_compose() {
        let cfg = MachineConfig::default()
            .with_hz(1000.0)
            .with_cr4_tsd(true)
            .with_tickless(true)
            .with_preserve_selectors(true)
            .with_restricted_segment_writes(true);
        assert_eq!(cfg.timer_hz, 1000.0);
        assert!(
            cfg.cr4_tsd && cfg.tickless && cfg.preserve_selectors && cfg.restrict_segment_writes
        );
    }

    #[test]
    fn granularity_targets_are_encoded() {
        // Table III: granularity = 1 / probe_iter_cycles (increments per
        // TSC cycle at base frequency, roughly).
        let g = 1.0 / MachineConfig::lenovo_yangtian().probe_iter_cycles;
        assert!((g - 1.56).abs() < 0.01);
    }
}
