//! The simulated machine: one attacker-observable logical core, its
//! frequency domain, interrupt fabric, segment registers, caches, and
//! kernel entry/exit behaviour.

use crate::config::{Defense, MachineConfig, Vendor};
use crate::error::SimError;
use crate::freq::{FreqModel, StepFn};
use irq::time::Ps;
use irq::{
    ExitClass, FaultLog, FaultPlan, FaultedPop, GroundTruth, InterruptFabric, InterruptKind,
    KernelExit, SourceId,
};
use memsim::{AccessOutcome, KaslrLayout, MemoryHierarchy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use x86seg::{
    load_data_segment, protected_mode_return, DataSegReg, DescriptorTables, PrivilegeLevel,
    ReturnFootprint, SegmentRegisterFile, Selector,
};

/// Most near-miss interrupts one kernel stint may absorb through the
/// fault plan's coalescing window (rate-limit style coalescing merges a
/// bounded burst, it does not stall delivery forever).
const COALESCE_BURST_CAP: u32 = 4;

/// Maps the architectural register id onto its observability mirror.
fn seg_reg_id(reg: DataSegReg) -> obs::SegRegId {
    match reg {
        DataSegReg::Ds => obs::SegRegId::Ds,
        DataSegReg::Es => obs::SegRegId::Es,
        DataSegReg::Fs => obs::SegRegId::Fs,
        DataSegReg::Gs => obs::SegRegId::Gs,
    }
}

/// One interrupt delivered to the simulated core, as the simulator (not
/// the attacker) sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredIrq {
    /// Kind of the interrupt that ended the user span.
    pub kind: InterruptKind,
    /// Kernel-exit class of the delivery ([`ExitClass::Irq`] for every
    /// ordinary interrupt; [`ExitClass::EnclaveAex`] when the core was
    /// inside an enclave; [`ExitClass::DefensePad`] for synthetic
    /// padding exits).
    pub class: ExitClass,
    /// Delivery instant.
    pub at: Ps,
    /// Handler routine cost (`w` in paper Eq. 1).
    pub handler_cost: Ps,
    /// Total time spent away from user space (handler + cascaded
    /// interrupts + scheduler preemption).
    pub kernel_span: Ps,
    /// The segment-register footprint the return to user space left.
    pub footprint: ReturnFootprint,
}

/// Why a [`Machine::run_user_until`] span ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpanEnd {
    /// An interrupt was delivered (and handled; the span's end is the
    /// moment user execution resumed).
    Interrupt(DeliveredIrq),
    /// The requested deadline was reached without any interrupt.
    Deadline,
}

/// A span of uninterrupted user-mode execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserSpan {
    /// When user execution started.
    pub start: Ps,
    /// When the span ended (interrupt delivery or deadline).
    pub end: Ps,
    /// CPU cycles the user code executed during the span, integrated over
    /// the (piecewise-constant) DVFS frequency.
    pub cycles: f64,
    /// What ended the span.
    pub ended_by: SpanEnd,
}

/// A victim task sharing the attacker's logical core (the "default"
/// setting of paper Table IV pins browser and attacker together).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoResident {
    /// The scheduler preempts the attacker every this-many timer ticks…
    pub preempt_every_ticks: u32,
    /// …for a timeslice of this length.
    pub slice: Ps,
    /// If set, the victim occasionally leaves this (valid) selector in GS
    /// instead of the scrubbed zero — the paper's observation that the
    /// probe must detect *change*, not specifically zero.
    pub gs_reload: Option<Selector>,
    /// Probability per preemption that `gs_reload` happens.
    pub gs_reload_prob: f64,
}

impl CoResident {
    /// A browser-like co-resident: preempted every 2 ticks for 1.5 ms.
    #[must_use]
    pub fn browser() -> Self {
        CoResident {
            preempt_every_ticks: 2,
            slice: Ps::from_us(1_500),
            gs_reload: None,
            gs_reload_prob: 0.0,
        }
    }
}

/// The simulated machine.
///
/// All stochastic behaviour draws from one seeded RNG, so a `(config,
/// seed)` pair fully determines every experiment.
///
/// Guest code drives the machine through *operations* (`wrgs`, `rdgs`,
/// `rdtsc`, `mem_access`, `spin`, …), each of which consumes simulated
/// cycles at the current DVFS frequency; interrupts are delivered whenever
/// simulated time crosses an arrival, running the kernel path and applying
/// the segment-protection scrub of Algorithm 1 on the return to user
/// space.
///
/// # Example
///
/// ```
/// use segsim::{Machine, MachineConfig};
/// use x86seg::Selector;
///
/// let mut m = Machine::new(MachineConfig::default(), 42);
/// m.wrgs(Selector::from_bits(0x1)).unwrap();
/// // Run until the first interrupt: the marker must be scrubbed.
/// let span = m.run_user_until(irq::Ps::MAX);
/// assert!(matches!(span.ended_by, segsim::SpanEnd::Interrupt(_)));
/// assert_eq!(m.rdgs().bits(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    // Fields are `pub(crate)` so the sibling `snapshot` module can
    // capture and restore them; everything outside the crate still goes
    // through the accessor API.
    pub(crate) config: MachineConfig,
    pub(crate) rng: SmallRng,
    pub(crate) now: Ps,
    pub(crate) freq: FreqModel,
    pub(crate) fabric: InterruptFabric,
    pub(crate) timer_source: Option<SourceId>,
    pub(crate) ground_truth: GroundTruth,
    pub(crate) regs: SegmentRegisterFile,
    pub(crate) tables: DescriptorTables,
    pub(crate) mem: MemoryHierarchy,
    pub(crate) kaslr: Option<KaslrLayout>,
    pub(crate) co_resident: Option<CoResident>,
    pub(crate) timer_ticks_seen: u32,
    pub(crate) kernel_entries: u64,
    /// Total cycles elapsed in the frequency domain since t = 0 (user +
    /// kernel), used by the counting-thread model.
    pub(crate) domain_cycles: f64,
    /// Accumulated counting-thread drift (SMT contention random walk).
    pub(crate) ct_drift: f64,
    /// Kernel-entry count at the last counting-thread read (stall kicks).
    pub(crate) ct_last_kernel_entries: u64,
    /// User-side cycles still owed to pipeline/cache refill after the last
    /// interrupt (consumed before guest work makes progress).
    pub(crate) pending_refill: f64,
    /// Opt-in interrupt-path fault injection (`None` = nominal machine,
    /// bit-identical RNG stream to a build without fault injection).
    pub(crate) fault_plan: Option<FaultPlan>,
    /// Accounting of every fault actually injected.
    pub(crate) fault_log: FaultLog,
    /// Remaining guest operations in the current SMT-noise burst.
    pub(crate) smt_burst_left: u32,
    /// Whether the core is currently executing inside an SGX-like
    /// enclave: interrupt deliveries become AEX-classified exits.
    pub(crate) enclave_active: bool,
    /// Set when the QuanShield defense tore the enclave down (permanent
    /// for the machine's lifetime; `enter_enclave` refuses afterwards).
    pub(crate) enclave_destroyed: bool,
    /// Total AEX-classified deliveries.
    pub(crate) aex_exits: u64,
    /// Total synthetic padding exits inserted by the padding defense.
    pub(crate) padded_exits: u64,
    /// Next instant the padding defense inserts a synthetic exit
    /// (`None` = padding disabled; the common fast path).
    pub(crate) next_pad_at: Option<Ps>,
    /// Optional observability sink. `None` (the default) keeps every
    /// hook a dead branch: no RNG draws, no timing change, bit-identical
    /// behaviour to a build without instrumentation.
    pub(crate) sink: Option<Box<obs::TraceSink>>,
}

impl Machine {
    /// Builds a machine from a configuration and an RNG seed.
    ///
    /// Delegates to [`reset`](Machine::reset) so the two can never drift:
    /// a fresh machine and an in-place reset go through the same boot
    /// routine by construction.
    #[must_use]
    pub fn new(config: MachineConfig, seed: u64) -> Self {
        let mut machine = Machine {
            rng: SmallRng::seed_from_u64(seed),
            now: Ps::ZERO,
            freq: FreqModel::new(config.freq),
            fabric: InterruptFabric::new(),
            timer_source: None,
            ground_truth: GroundTruth::new(),
            regs: SegmentRegisterFile::flat_user(),
            tables: DescriptorTables::linux_flat(),
            mem: MemoryHierarchy::default(),
            kaslr: None,
            co_resident: None,
            timer_ticks_seen: 0,
            kernel_entries: 0,
            domain_cycles: 0.0,
            ct_drift: 0.0,
            ct_last_kernel_entries: 0,
            pending_refill: 0.0,
            fault_plan: None,
            fault_log: FaultLog::default(),
            smt_burst_left: 0,
            enclave_active: false,
            enclave_destroyed: false,
            aex_exits: 0,
            padded_exits: 0,
            next_pad_at: None,
            sink: None,
            config: config.clone(),
        };
        machine.reset(config, seed);
        machine
    }

    /// Re-initialises this machine in place to exactly the state
    /// [`Machine::new(config, seed)`](Machine::new) produces, reusing the
    /// existing heap allocations (cache arrays, ground-truth buffer)
    /// instead of re-allocating them.
    ///
    /// Batched trial runners lean on this: a lane runs one trial, is
    /// reset, and runs the next — with the cache hierarchy's O(1)
    /// epoch-clear the reset costs nanoseconds where a fresh
    /// [`Machine::new`] pays the full allocation bill. The RNG-draw order
    /// (seed, timer, PMI, resched, frequency model) replays `new`'s
    /// exactly, so a reset machine is draw-for-draw indistinguishable
    /// from a fresh one.
    pub fn reset(&mut self, config: MachineConfig, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
        self.fabric = InterruptFabric::new();
        self.timer_source = if config.tickless {
            None
        } else {
            Some(self.fabric.add_periodic_timer(
                config.timer_hz,
                config.timer_jitter,
                &mut self.rng,
            ))
        };
        if config.pmi_rate_hz > 0.0 {
            self.fabric
                .add_poisson(InterruptKind::PerfMon, config.pmi_rate_hz, &mut self.rng);
        }
        if config.resched_rate_hz > 0.0 {
            self.fabric.add_poisson(
                InterruptKind::Resched,
                config.resched_rate_hz,
                &mut self.rng,
            );
        }
        self.freq = FreqModel::new(config.freq);
        // The attacker is a spin loop: full local load unless told
        // otherwise.
        self.freq.set_local_load(1.0);
        self.freq
            .set_step_clamp(config.fault_plan.and_then(|p| p.freq_step_clamp_khz));
        self.now = Ps::ZERO;
        self.ground_truth.clear();
        self.ground_truth.set_enabled(true);
        self.regs = SegmentRegisterFile::flat_user();
        self.tables = DescriptorTables::linux_flat();
        self.mem.clear();
        self.kaslr = None;
        self.co_resident = None;
        self.timer_ticks_seen = 0;
        self.kernel_entries = 0;
        self.domain_cycles = 0.0;
        self.ct_drift = 0.0;
        self.ct_last_kernel_entries = 0;
        self.pending_refill = 0.0;
        self.fault_plan = config.fault_plan;
        self.fault_log = FaultLog::default();
        self.smt_burst_left = 0;
        self.enclave_active = false;
        self.enclave_destroyed = false;
        self.aex_exits = 0;
        self.padded_exits = 0;
        // The padding grid starts one quantum in: t = 0 itself is not a
        // pad instant (a pad before any user work would be pure cost).
        self.next_pad_at = match config.defense {
            Defense::Padding { quantum, .. } if quantum > Ps::ZERO => Some(quantum),
            _ => None,
        };
        self.sink = None;
        self.config = config;
    }

    // ------------------------------------------------------------------
    // Simulation-side accessors (not attacker-visible primitives).
    // ------------------------------------------------------------------

    /// Current simulated time. **Simulator API** — attacker code must not
    /// use this as a timing source (that is the whole point of SegScope).
    #[inline]
    #[must_use]
    pub fn now(&self) -> Ps {
        self.now
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Instantaneous core frequency, kHz (simulator API).
    #[must_use]
    pub fn current_freq_khz(&self) -> u64 {
        self.freq.current_khz()
    }

    /// The ground-truth interrupt trace (the eBPF analogue).
    #[must_use]
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// Mutable access to the ground-truth trace (to clear or disable it).
    pub fn ground_truth_mut(&mut self) -> &mut GroundTruth {
        &mut self.ground_truth
    }

    /// Number of kernel entries so far.
    #[must_use]
    pub fn kernel_entries(&self) -> u64 {
        self.kernel_entries
    }

    /// The active fault-injection plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan
    }

    /// Installs or removes a fault-injection plan at runtime.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
        self.freq
            .set_step_clamp(plan.and_then(|p| p.freq_step_clamp_khz));
        if plan.is_none() {
            self.smt_burst_left = 0;
        }
    }

    /// Accounting of every fault injected so far (the auditor's view;
    /// attacker code never reads this).
    #[must_use]
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// Installs an observability sink. Hooks throughout the machine
    /// stream typed [`obs::Event`]s into it, stamped with simulated time
    /// only. Tracing consumes no RNG draws and perturbs no timing, so a
    /// traced run is bit-identical to an untraced one.
    pub fn install_trace_sink(&mut self, sink: obs::TraceSink) {
        self.sink = Some(Box::new(sink));
    }

    /// The installed observability sink, if any.
    #[must_use]
    pub fn trace_sink(&self) -> Option<&obs::TraceSink> {
        self.sink.as_deref()
    }

    /// Mutable access to the installed sink (for emitting layer-specific
    /// events, e.g. the probe's `ProbeSample`s).
    pub fn trace_sink_mut(&mut self) -> Option<&mut obs::TraceSink> {
        self.sink.as_deref_mut()
    }

    /// Removes and returns the installed sink (typically at the end of a
    /// run, to export the trace).
    pub fn take_trace_sink(&mut self) -> Option<obs::TraceSink> {
        self.sink.take().map(|boxed| *boxed)
    }

    /// The cache hierarchy (for ground-truth inspection in tests).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Mutable cache hierarchy (victim-side effects, e.g. a Spectre
    /// gadget running in another process touching shared lines).
    pub fn memory_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.mem
    }

    /// The machine's RNG (victim models share it for determinism).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Disjoint mutable borrows of the cache hierarchy and the RNG, for
    /// victim models (e.g. a Spectre gadget) that need both at once.
    pub fn memory_and_rng(&mut self) -> (&mut MemoryHierarchy, &mut SmallRng) {
        (&mut self.mem, &mut self.rng)
    }

    /// Arrival time of the next pending interrupt, if any (simulator API;
    /// used to model `umwait` wake-cause arbitration).
    #[inline]
    #[must_use]
    pub fn next_interrupt_at(&self) -> Option<Ps> {
        self.fabric.peek_next().map(|p| p.at)
    }

    // ------------------------------------------------------------------
    // Environment / victim hooks.
    // ------------------------------------------------------------------

    /// Injects one-shot device interrupts (victim activity).
    pub fn inject_interrupts<I: IntoIterator<Item = (Ps, InterruptKind)>>(&mut self, events: I) {
        self.fabric.inject_all(events);
    }

    /// Injects one-shot *classified* kernel exits — the Heckler-style
    /// offensive direction, where a malicious hypervisor drives exits
    /// into a confidential-VM victim on a schedule of its choosing.
    pub fn inject_exits<I: IntoIterator<Item = (Ps, InterruptKind, ExitClass)>>(
        &mut self,
        events: I,
    ) {
        self.fabric.inject_exit_all(events);
    }

    // ------------------------------------------------------------------
    // Enclave lifecycle (AEX modeling).
    // ------------------------------------------------------------------

    /// Enters SGX-like enclave mode: until [`Machine::exit_enclave`],
    /// every interrupt delivery is an [`ExitClass::EnclaveAex`] exit.
    ///
    /// Returns `false` (and stays outside the enclave) if the QuanShield
    /// defense already destroyed the enclave.
    pub fn enter_enclave(&mut self) -> bool {
        if self.enclave_destroyed {
            return false;
        }
        self.enclave_active = true;
        true
    }

    /// Leaves enclave mode (a synchronous, victim-initiated EEXIT; it is
    /// not a kernel exit and produces no footprint).
    pub fn exit_enclave(&mut self) {
        self.enclave_active = false;
    }

    /// Whether the core is currently executing inside the enclave.
    #[must_use]
    pub fn enclave_active(&self) -> bool {
        self.enclave_active
    }

    /// Whether the QuanShield defense tore the enclave down.
    #[must_use]
    pub fn enclave_destroyed(&self) -> bool {
        self.enclave_destroyed
    }

    /// Total AEX-classified deliveries so far.
    #[must_use]
    pub fn aex_exits(&self) -> u64 {
        self.aex_exits
    }

    /// Total synthetic padding exits inserted by the padding defense.
    #[must_use]
    pub fn padded_exits(&self) -> u64 {
        self.padded_exits
    }

    /// Sets the attacker task's contribution to the frequency governor's
    /// load input (1.0 = spin loop, the default).
    pub fn set_local_load(&mut self, load: f64) {
        self.freq.set_local_load(load);
    }

    /// Installs a victim load schedule on the shared frequency domain.
    pub fn set_victim_load(&mut self, schedule: StepFn) {
        self.freq.set_external_load(schedule);
    }

    /// Installs a data-dependent power-draw schedule (Hertzbleed input).
    pub fn set_power_excess(&mut self, schedule: StepFn) {
        self.freq.set_power_excess(schedule);
    }

    /// Pins the core frequency (the "frequency scaling disabled" setting),
    /// or unpins with `None`.
    pub fn pin_frequency(&mut self, khz: Option<u64>) {
        self.freq.pin(khz);
    }

    /// Installs or removes a co-resident victim task on this logical core.
    pub fn set_co_resident(&mut self, victim: Option<CoResident>) {
        self.co_resident = victim;
    }

    /// Reprograms the APIC timer frequency (HZ), effective immediately.
    ///
    /// # Panics
    ///
    /// Panics in tickless mode (there is no timer source to reprogram).
    pub fn set_timer_hz(&mut self, hz: f64) {
        let src = self.timer_source.expect("tickless machine has no timer");
        self.fabric.set_timer_hz(src, hz, self.now, &mut self.rng);
        self.config.timer_hz = hz;
    }

    /// Suppresses or re-enables the periodic timer at runtime (tickless
    /// mode entering/leaving, e.g. when a co-located busy task appears).
    pub fn set_timer_enabled(&mut self, enabled: bool) {
        if let Some(src) = self.timer_source {
            self.fabric
                .set_enabled(src, enabled, self.now, &mut self.rng);
        } else if enabled {
            self.timer_source = Some(self.fabric.add_periodic_timer(
                self.config.timer_hz,
                self.config.timer_jitter,
                &mut self.rng,
            ));
        }
    }

    /// Installs a KASLR'd kernel layout for the kernel-probing ops.
    pub fn set_kaslr(&mut self, layout: KaslrLayout) {
        self.kaslr = Some(layout);
    }

    /// The installed KASLR layout, if any.
    #[must_use]
    pub fn kaslr(&self) -> Option<&KaslrLayout> {
        self.kaslr.as_ref()
    }

    // ------------------------------------------------------------------
    // Guest operations (the attacker's instruction set).
    // ------------------------------------------------------------------

    /// Writes a selector into GS (`mov gs, r16`). The SegScope marker
    /// placement.
    ///
    /// # Errors
    ///
    /// [`SimError::SegmentWriteRestricted`] under the restriction
    /// mitigation; [`SimError::Segment`] for an architecturally faulting
    /// load.
    pub fn wrgs(&mut self, selector: Selector) -> Result<(), SimError> {
        self.wrseg(DataSegReg::Gs, selector)
    }

    /// Writes a selector into any data-segment register.
    ///
    /// # Errors
    ///
    /// See [`Machine::wrgs`].
    pub fn wrseg(&mut self, reg: DataSegReg, selector: Selector) -> Result<(), SimError> {
        self.exec_op(self.config.wrseg_cycles);
        if self.config.restrict_segment_writes {
            return Err(SimError::SegmentWriteRestricted);
        }
        load_data_segment(
            &mut self.regs,
            reg,
            selector,
            &self.tables,
            PrivilegeLevel::Ring3,
        )
        .map_err(SimError::Segment)
    }

    /// Reads the visible selector of GS (`mov r16, gs`). The SegScope
    /// footprint check.
    #[inline]
    pub fn rdgs(&mut self) -> Selector {
        self.rdseg(DataSegReg::Gs)
    }

    /// Reads the visible selector of any data-segment register.
    pub fn rdseg(&mut self, reg: DataSegReg) -> Selector {
        self.exec_op(self.config.rdseg_cycles);
        self.regs.selector(reg)
    }

    /// The visible selector of `reg`, read *without* executing an
    /// instruction: no cycles consumed, no RNG draws. **Simulator API** —
    /// batch runners mirror selector state into their struct-of-arrays
    /// views with this; attacker code must use [`rdseg`](Machine::rdseg).
    #[inline]
    #[must_use]
    pub fn peek_seg(&self, reg: DataSegReg) -> Selector {
        self.regs.selector(reg)
    }

    /// The high-resolution timestamp (`rdtsc` on Intel, `rdpru` on AMD):
    /// invariant TSC cycles at the base frequency.
    ///
    /// # Errors
    ///
    /// [`SimError::TimerRestricted`] when `CR4.TSD` is set (the paper's
    /// timer-constrained threat model).
    pub fn rdtsc(&mut self) -> Result<u64, SimError> {
        if self.config.cr4_tsd {
            return Err(SimError::TimerRestricted);
        }
        self.exec_op(self.config.rdtsc_cycles);
        Ok(self.tsc_value())
    }

    /// The name of the high-resolution timestamp instruction this machine
    /// offers.
    #[must_use]
    pub fn hires_timer_name(&self) -> &'static str {
        match self.config.vendor {
            Vendor::Intel => "rdtsc",
            Vendor::Amd => "rdpru",
        }
    }

    /// A coarse architectural clock read (vDSO `clock_gettime` truncated
    /// to `resolution`), returning nanoseconds.
    ///
    /// # Errors
    ///
    /// [`SimError::TimerRestricted`] when `CR4.TSD` is set — the paper's
    /// defenders constrain all architectural timers.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn clock_read(&mut self, resolution: Ps) -> Result<u64, SimError> {
        assert!(resolution > Ps::ZERO, "clock resolution must be positive");
        if self.config.cr4_tsd {
            return Err(SimError::TimerRestricted);
        }
        self.exec_op(self.config.clock_read_cycles);
        let res_ps = resolution.as_ps();
        let truncated = self.now.as_ps() / res_ps * res_ps;
        Ok(truncated / 1_000)
    }

    /// Reads `scaling_cur_freq` through sysfs (unprivileged; ~10 ms stale),
    /// returning kHz. Costs a few thousand cycles of syscall + file I/O.
    pub fn scaling_cur_freq(&mut self) -> u64 {
        self.exec_op(2_400);
        self.freq.sysfs_khz(self.now)
    }

    /// Spins for `cycles` cycles of plain computation.
    pub fn spin(&mut self, cycles: u64) {
        self.exec_op(cycles);
    }

    /// Performs a demand load of `addr` through the cache hierarchy,
    /// consuming its latency.
    pub fn mem_access(&mut self, addr: u64) -> AccessOutcome {
        let outcome = self.mem.access(addr);
        self.exec_op(outcome.cycles);
        outcome
    }

    /// Issues `clflush addr`.
    pub fn clflush(&mut self, addr: u64) {
        self.exec_op(45);
        self.mem.clflush(addr);
    }

    /// Issues a software prefetch of `addr`.
    pub fn prefetch(&mut self, addr: u64) {
        let outcome = self.mem.prefetch(addr);
        self.exec_op(outcome.cycles);
    }

    /// Probes a kernel address by *direct access* (faults; the registered
    /// user SIGSEGV handler absorbs it). Requires [`Machine::set_kaslr`].
    ///
    /// # Panics
    ///
    /// Panics if no KASLR layout is installed.
    pub fn kernel_probe_access(&mut self, addr: u64) {
        let layout = self.kaslr.as_mut().expect("no KASLR layout installed");
        let cycles = layout.probe_access(addr);
        // The faulting access enters the kernel (SIGSEGV delivery): this
        // is what disturbs an SMT-sibling counting thread so badly.
        self.kernel_entries += 1;
        self.exec_op(cycles);
    }

    /// Probes a kernel address by *prefetch* (never faults). Requires
    /// [`Machine::set_kaslr`].
    ///
    /// # Panics
    ///
    /// Panics if no KASLR layout is installed.
    pub fn kernel_probe_prefetch(&mut self, addr: u64) {
        let layout = self.kaslr.as_mut().expect("no KASLR layout installed");
        let cycles = layout.probe_prefetch(addr);
        self.exec_op(cycles);
    }

    /// Reads the SMT-sibling counting thread's counter (the Lipp/Schwarz
    /// timer baseline). The read costs a cross-core cache-line transfer.
    pub fn counting_thread_read(&mut self) -> u64 {
        self.exec_op(70);
        // The sibling increments once per `counting_thread_iter_cycles`
        // of domain cycles, perturbed by a port-contention random walk...
        let ideal = self.domain_cycles / self.config.counting_thread_iter_cycles;
        let step_std = ideal.max(1.0).sqrt() * self.config.counting_thread_noise * 40.0;
        self.ct_drift += irq::dist::normal(&mut self.rng, 0.0, step_std);
        // ...plus a stall kick per kernel entry on the shared physical
        // core (faults/interrupts freeze the sibling's pipeline slots).
        let kicks = self.kernel_entries - self.ct_last_kernel_entries;
        self.ct_last_kernel_entries = self.kernel_entries;
        if kicks > 0 {
            let kick_std = self.config.counting_thread_kick * (kicks as f64).sqrt();
            self.ct_drift += irq::dist::normal(&mut self.rng, 0.0, kick_std);
        }
        (ideal + self.ct_drift).max(0.0) as u64
    }

    /// Cycles per iteration of the SegScope check loop on this machine
    /// (`k` in paper Eq. 1).
    #[inline]
    #[must_use]
    pub fn probe_iter_cycles(&self) -> f64 {
        self.config.probe_iter_cycles
    }

    // ------------------------------------------------------------------
    // The analytic fast path.
    // ------------------------------------------------------------------

    /// Runs user code until `deadline` or the next interrupt, whichever
    /// comes first, returning the executed span.
    ///
    /// This is the analytic primitive the SegScope probe and the baseline
    /// probers build on: instead of simulating millions of loop
    /// iterations, callers convert the span's integrated `cycles` into
    /// iteration counts.
    pub fn run_user_until(&mut self, deadline: Ps) -> UserSpan {
        let start = self.now;
        let mut cycles = 0.0f64;
        loop {
            // Governor updates due now?
            while self.freq.next_update_at() <= self.now {
                let at = self.freq.next_update_at();
                self.governor_tick(at);
            }
            // Span batching: the fabric cannot change until a delivery, so
            // one O(1) peek pins the stopping point for the whole batch of
            // governor intervals between here and the next interrupt (or
            // the deadline). The inner loop then integrates interval by
            // interval — keeping the exact per-interval f64 arithmetic and
            // the one freq-noise RNG draw per governor tick, so traces
            // stay byte-identical — without re-consulting the fabric.
            let next_irq = self.fabric.peek_next();
            let irq_at = next_irq.map_or(Ps::MAX, |p| p.at.max(self.now));
            // The padding defense's grid is a second delivery source; with
            // no defense `pad_at` is `Ps::MAX` and this is the old
            // two-way minimum bit-for-bit.
            let pad_at = self.next_pad_at.map_or(Ps::MAX, |p| p.max(self.now));
            let stop = deadline.min(irq_at).min(pad_at);
            loop {
                let khz = self.freq.current_khz();
                let boundary = stop.min(self.freq.next_update_at());
                if boundary > self.now {
                    let span = boundary - self.now;
                    let mut c = span.as_ps() as f64 * khz as f64 / 1e9;
                    self.domain_cycles += c;
                    // Cycles owed to post-interrupt pipeline/cache refill
                    // do not advance guest work.
                    let refill = self.pending_refill.min(c);
                    self.pending_refill -= refill;
                    c -= refill;
                    cycles += c;
                    self.now = boundary;
                }
                if boundary == stop {
                    break;
                }
                // Governor boundary: tick and keep integrating.
                while self.freq.next_update_at() <= self.now {
                    let at = self.freq.next_update_at();
                    self.governor_tick(at);
                }
            }
            if stop == irq_at && next_irq.is_some() {
                // A real interrupt wins a tie against a pad instant.
                if let Some(delivered) = self.deliver_interrupt() {
                    return UserSpan {
                        start,
                        end: self.now,
                        cycles,
                        ended_by: SpanEnd::Interrupt(delivered),
                    };
                }
                // The fault plan dropped the interrupt: user execution
                // continues, unaware anything was pending.
                continue;
            }
            if stop == pad_at && self.next_pad_at.is_some() {
                let delivered = self.deliver_pad_exit();
                return UserSpan {
                    start,
                    end: self.now,
                    cycles,
                    ended_by: SpanEnd::Interrupt(delivered),
                };
            }
            return UserSpan {
                start,
                end: self.now,
                cycles,
                ended_by: SpanEnd::Deadline,
            };
        }
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn tsc_value(&self) -> u64 {
        self.now.cycles_at(self.config.tsc_khz())
    }

    /// Runs one governor update, tracking fault-injection step clamps.
    fn governor_tick(&mut self, at: Ps) {
        let khz_before = self.freq.current_khz();
        let clamped = self.freq.tick(at, &mut self.rng);
        if clamped {
            self.fault_log.clamped_steps += 1;
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            let khz_after = self.freq.current_khz();
            if khz_after != khz_before {
                sink.emit(
                    at.as_ps(),
                    obs::EventKind::FreqTransition {
                        from_khz: khz_before,
                        to_khz: khz_after,
                    },
                );
                sink.metrics.incr("freq.transitions", 1);
            }
            if clamped {
                sink.emit(
                    at.as_ps(),
                    obs::EventKind::FaultInjected {
                        fault: obs::FaultKind::ClampedFreqStep,
                    },
                );
            }
        }
    }

    /// Executes one guest operation of `nominal` cycles, applying the
    /// machine's noise model and delivering any interrupts the elapsed
    /// time crosses.
    fn exec_op(&mut self, nominal: u64) {
        let noise = &self.config.noise;
        let mut cycles = nominal as f64
            + irq::dist::normal(&mut self.rng, 0.0, noise.op_jitter_std)
                .max(-(nominal as f64) * 0.5);
        if self.rng.gen::<f64>() < noise.tail_prob {
            let u: f64 = self.rng.gen();
            cycles += (noise.tail_min.ln() + u * (noise.tail_max.ln() - noise.tail_min.ln())).exp();
        }
        cycles *= noise.smt_factor;
        // Fault injection: SMT-noise bursts stretch a run of operations.
        if let Some(plan) = self.fault_plan {
            if plan.smt_burst_prob > 0.0 {
                if self.smt_burst_left == 0 && self.rng.gen::<f64>() < plan.smt_burst_prob {
                    self.smt_burst_left = plan.smt_burst_ops;
                    self.fault_log.bursts += 1;
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.emit(
                            self.now.as_ps(),
                            obs::EventKind::FaultInjected {
                                fault: obs::FaultKind::SmtBurst,
                            },
                        );
                    }
                }
                if self.smt_burst_left > 0 {
                    self.smt_burst_left -= 1;
                    cycles *= plan.smt_burst_factor;
                }
            }
        }
        // The first work after an interrupt stalls on cold pipeline/caches.
        cycles += std::mem::take(&mut self.pending_refill);
        self.advance_cycles(cycles.max(0.0));
    }

    /// Advances simulated time by `cycles` of user execution, delivering
    /// interrupts and governor updates on the way.
    fn advance_cycles(&mut self, cycles: f64) {
        let mut remaining = cycles;
        while remaining > 0.0 {
            while self.freq.next_update_at() <= self.now {
                let at = self.freq.next_update_at();
                self.governor_tick(at);
            }
            // As in `run_user_until`, one peek covers every governor
            // interval up to the next delivery (nothing else mutates the
            // fabric), so the inner loop crosses tick boundaries without
            // re-scanning.
            let next_irq = self
                .fabric
                .peek_next()
                .map_or(Ps::MAX, |p| p.at.max(self.now));
            // With no padding defense `pad_at` is `Ps::MAX`: the stop
            // point collapses to the pre-defense `next_irq` exactly.
            let pad_at = self.next_pad_at.map_or(Ps::MAX, |p| p.max(self.now));
            let next_stop = next_irq.min(pad_at);
            loop {
                let khz = self.freq.current_khz();
                let boundary = self.freq.next_update_at().min(next_stop);
                let span_to_boundary = boundary.saturating_sub(self.now);
                let cycles_to_boundary = span_to_boundary.as_ps() as f64 * khz as f64 / 1e9;
                if cycles_to_boundary >= remaining {
                    let ps = (remaining * 1e9 / khz as f64).ceil() as u64;
                    self.now += Ps::from_ps(ps);
                    self.domain_cycles += remaining;
                    remaining = 0.0;
                    break;
                }
                remaining -= cycles_to_boundary;
                self.domain_cycles += cycles_to_boundary;
                self.now = boundary;
                if boundary == next_stop
                    && next_irq <= pad_at
                    && self.fabric.peek_next().is_some_and(|p| p.at <= self.now)
                {
                    // A real interrupt wins a tie against a pad instant.
                    let _ = self.deliver_interrupt();
                    // The fabric changed: fall back out to re-peek.
                    break;
                }
                if boundary == next_stop && pad_at <= self.now && self.next_pad_at.is_some() {
                    let _ = self.deliver_pad_exit();
                    // The pad grid advanced: fall back out to re-peek.
                    break;
                }
                // Governor boundary: tick and keep integrating.
                while self.freq.next_update_at() <= self.now {
                    let at = self.freq.next_update_at();
                    self.governor_tick(at);
                }
            }
        }
    }

    /// Pops the due interrupt through the fault plan's delivery faults.
    /// `None` means the plan dropped it (the core never sees it).
    fn pop_due_interrupt(&mut self) -> Option<irq::PendingInterrupt> {
        match self.fault_plan.filter(FaultPlan::has_delivery_faults) {
            Some(plan) => {
                let popped = self
                    .fabric
                    .pop_with_faults_traced(
                        &plan,
                        &mut self.fault_log,
                        &mut self.rng,
                        self.sink.as_deref_mut(),
                    )
                    .expect("deliver_interrupt called with nothing pending");
                match popped {
                    FaultedPop::Delivered(p) => Some(p),
                    FaultedPop::Dropped(_) => None,
                }
            }
            None => Some(
                self.fabric
                    .pop(&mut self.rng)
                    .expect("deliver_interrupt called with nothing pending"),
            ),
        }
    }

    /// Samples one handler routine cost, applying fault-injection jitter.
    fn sample_handler_cost(&mut self, kind: InterruptKind) -> Ps {
        let w = self.config.handler_model.sample(kind, &mut self.rng);
        match self.fault_plan {
            Some(plan) if plan.handler_jitter_std > 0.0 => {
                self.fault_log.jittered += 1;
                let factor = irq::dist::normal(&mut self.rng, 0.0, plan.handler_jitter_std).exp();
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.emit(
                        self.now.as_ps(),
                        obs::EventKind::FaultInjected {
                            fault: obs::FaultKind::HandlerJitter,
                        },
                    );
                }
                Ps::from_ps(((w.as_ps() as f64 * factor) as u64).max(1))
            }
            _ => w,
        }
    }

    /// Delivers the due interrupt: kernel entry, handler, cascades,
    /// scheduler preemption, and the Algorithm 1 scrub on return.
    ///
    /// Returns `None` when the fault plan dropped the interrupt before it
    /// reached the core (no kernel entry, no footprint, no ground-truth
    /// record — exactly like a lost wakeup on real hardware).
    fn deliver_interrupt(&mut self) -> Option<DeliveredIrq> {
        let pending = self.pop_due_interrupt()?;
        self.kernel_entries += 1;
        let first_kind = pending.kind;
        let first_at = pending.at;
        let handler_cost = self.sample_handler_cost(first_kind);
        let first_class = self.classify_delivery(pending.class, first_at);
        self.ground_truth.record_exit(
            first_at,
            KernelExit {
                kind: first_kind,
                class: first_class,
            },
            handler_cost,
        );
        self.emit_delivery(first_at, first_kind, first_class, handler_cost);
        let mut kernel_span = handler_cost;
        if first_kind == InterruptKind::Timer {
            self.timer_ticks_seen = self.timer_ticks_seen.wrapping_add(1);
        }
        // Scheduler preemption by a co-resident task.
        let mut gs_reload: Option<Selector> = None;
        if let Some(co) = self.co_resident {
            if first_kind == InterruptKind::Timer
                && co.preempt_every_ticks > 0
                && self.timer_ticks_seen.is_multiple_of(co.preempt_every_ticks)
            {
                kernel_span += co.slice;
                if let Some(sel) = co.gs_reload {
                    if self.rng.gen::<f64>() < co.gs_reload_prob {
                        gs_reload = Some(sel);
                    }
                }
            }
        }
        // Cascaded interrupts that land while we're still in the kernel
        // are handled back-to-back (one combined return to user space).
        // The fault plan's coalescing window widens what counts as
        // "still in the kernel", merging near-misses into this stint —
        // bounded per stint so a window wider than a periodic source's
        // period cannot swallow the rest of the run in one cascade.
        let window = self.fault_plan.map_or(Ps::ZERO, |p| p.coalesce_window);
        let mut coalesce_budget: u32 = if window > Ps::ZERO {
            COALESCE_BURST_CAP
        } else {
            0
        };
        loop {
            let horizon = if coalesce_budget > 0 {
                kernel_span + window
            } else {
                kernel_span
            };
            let due = match self.fabric.peek_next() {
                Some(p) if p.at <= self.now + horizon => p,
                _ => break,
            };
            let natural = due.at <= self.now + kernel_span;
            let Some(p) = self.pop_due_interrupt() else {
                continue;
            };
            if !natural {
                self.fault_log.coalesced += 1;
                coalesce_budget -= 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.emit(
                        due.at.as_ps(),
                        obs::EventKind::IrqCoalesced { irq: p.kind.into() },
                    );
                    sink.metrics.incr("irq.coalesced", 1);
                }
            }
            self.kernel_entries += 1;
            let w = self.sample_handler_cost(p.kind);
            let cascade_at = due.at.max(self.now);
            let cascade_class = self.classify_delivery(p.class, cascade_at);
            self.ground_truth.record_exit(
                cascade_at,
                KernelExit {
                    kind: p.kind,
                    class: cascade_class,
                },
                w,
            );
            self.emit_delivery(cascade_at, p.kind, cascade_class, w);
            if p.kind == InterruptKind::Timer {
                self.timer_ticks_seen = self.timer_ticks_seen.wrapping_add(1);
            }
            kernel_span = kernel_span.max(due.at.saturating_sub(self.now)) + w;
        }
        // Kernel time elapses at the domain frequency too.
        let kernel_end = self.now + kernel_span;
        while self.freq.next_update_at() <= kernel_end {
            let at = self.freq.next_update_at();
            self.governor_tick(at);
        }
        self.domain_cycles += kernel_span.as_ps() as f64 * self.freq.current_khz() as f64 / 1e9;
        self.now = kernel_end;
        // Resuming user code pays a pipeline/cache refill penalty.
        let noise = self.config.noise;
        self.pending_refill +=
            irq::dist::normal(&mut self.rng, noise.refill_mean, noise.refill_std).max(0.0);
        // The return to user space: Algorithm 1 (unless the
        // future-architecture mitigation preserves selectors).
        let footprint = if self.config.preserve_selectors {
            ReturnFootprint::default()
        } else {
            protected_mode_return(&mut self.regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0)
        };
        // The co-resident may have reloaded GS with a *valid* selector the
        // scrub keeps (the paper's "still observable as a change" note).
        if let Some(sel) = gs_reload {
            let _ = load_data_segment(
                &mut self.regs,
                DataSegReg::Gs,
                sel,
                &self.tables,
                PrivilegeLevel::Ring3,
            );
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            let at_ps = self.now.as_ps();
            for reg in DataSegReg::ALL {
                if footprint.was_cleared(reg) {
                    sink.emit(
                        at_ps,
                        obs::EventKind::SegClear {
                            reg: seg_reg_id(reg),
                            null: footprint.cleared_as_null(reg),
                        },
                    );
                }
            }
            sink.emit(
                at_ps,
                obs::EventKind::KernelReturn {
                    cleared: footprint.cleared_count() as u8,
                    kernel_span_ps: kernel_span.as_ps(),
                },
            );
            sink.metrics.incr("kernel.returns", 1);
            sink.metrics.observe("kernel.span_ps", kernel_span.as_ps());
        }
        Some(DeliveredIrq {
            kind: first_kind,
            class: first_class,
            at: first_at,
            handler_cost,
            kernel_span,
            footprint,
        })
    }

    /// Classifies one delivery against the enclave state and applies
    /// AEX-triggered defense effects (QuanShield self-destruction).
    ///
    /// No RNG draws: on a machine that never enters an enclave this is
    /// the identity on `pending_class` and the whole exit-class model
    /// costs one predictable branch.
    fn classify_delivery(&mut self, pending_class: ExitClass, at: Ps) -> ExitClass {
        if !self.enclave_active {
            return pending_class;
        }
        self.aex_exits += 1;
        if matches!(self.config.defense, Defense::QuanShield) {
            // First AEX: the enclave self-destructs, permanently. Later
            // deliveries (including cascades of this very stint) are
            // ordinary IRQs against a dead enclave.
            self.enclave_active = false;
            self.enclave_destroyed = true;
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.emit(at.as_ps(), obs::EventKind::EnclaveDestroyed);
                sink.metrics.incr("defense.enclave_destroyed", 1);
            }
        }
        ExitClass::EnclaveAex
    }

    /// Emits the per-delivery trace event (class-dependent kind).
    fn emit_delivery(&mut self, at: Ps, kind: InterruptKind, class: ExitClass, cost: Ps) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        if class == ExitClass::EnclaveAex {
            sink.emit(
                at.as_ps(),
                obs::EventKind::AexExit {
                    irq: kind.into(),
                    handler_cost_ps: cost.as_ps(),
                },
            );
            sink.metrics.incr("irq.aex", 1);
        } else {
            sink.emit(
                at.as_ps(),
                obs::EventKind::IrqDelivered {
                    irq: kind.into(),
                    handler_cost_ps: cost.as_ps(),
                },
            );
            sink.metrics.incr("irq.delivered", 1);
        }
        sink.metrics.observe("irq.handler_cost_ps", cost.as_ps());
    }

    /// Inserts one synthetic padding exit: kernel entry, fixed cost,
    /// Algorithm 1 scrub on return — everything the probe observes from
    /// a real interrupt, with **zero RNG draws** (the padding defense
    /// must never perturb the machine's RNG stream).
    fn deliver_pad_exit(&mut self) -> DeliveredIrq {
        let Defense::Padding { quantum, exit_cost } = self.config.defense else {
            unreachable!("pad scheduled without the padding defense");
        };
        let pad_at = self.next_pad_at.expect("pad scheduled");
        // Fixed grid: the next pad lands one quantum later regardless of
        // how long this stint runs (grid instants swallowed by a long
        // stint fire immediately afterwards, back to back).
        self.next_pad_at = Some(pad_at + quantum);
        self.kernel_entries += 1;
        self.padded_exits += 1;
        let kernel_span = exit_cost;
        self.ground_truth
            .record_exit(pad_at, KernelExit::pad(), exit_cost);
        // Kernel time elapses at the domain frequency (governor ticks
        // fire at the same absolute instants they would have anyway).
        let kernel_end = self.now + kernel_span;
        while self.freq.next_update_at() <= kernel_end {
            let at = self.freq.next_update_at();
            self.governor_tick(at);
        }
        self.domain_cycles += kernel_span.as_ps() as f64 * self.freq.current_khz() as f64 / 1e9;
        self.now = kernel_end;
        // Deterministic refill: the mean, no noise draw.
        self.pending_refill += self.config.noise.refill_mean.max(0.0);
        let footprint = if self.config.preserve_selectors {
            ReturnFootprint::default()
        } else {
            protected_mode_return(&mut self.regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0)
        };
        if let Some(sink) = self.sink.as_deref_mut() {
            let at_ps = self.now.as_ps();
            for reg in DataSegReg::ALL {
                if footprint.was_cleared(reg) {
                    sink.emit(
                        at_ps,
                        obs::EventKind::SegClear {
                            reg: seg_reg_id(reg),
                            null: footprint.cleared_as_null(reg),
                        },
                    );
                }
            }
            sink.emit(
                at_ps,
                obs::EventKind::DefensePad {
                    kernel_span_ps: kernel_span.as_ps(),
                },
            );
            sink.emit(
                at_ps,
                obs::EventKind::KernelReturn {
                    cleared: footprint.cleared_count() as u8,
                    kernel_span_ps: kernel_span.as_ps(),
                },
            );
            sink.metrics.incr("defense.pads", 1);
            sink.metrics.incr("kernel.returns", 1);
            sink.metrics.observe("kernel.span_ps", kernel_span.as_ps());
        }
        DeliveredIrq {
            kind: InterruptKind::Other,
            class: ExitClass::DefensePad,
            at: pad_at,
            handler_cost: exit_cost,
            kernel_span,
            footprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default(), 0x5e65c0de)
    }

    #[test]
    fn marker_survives_until_first_interrupt() {
        let mut m = machine();
        m.wrgs(Selector::from_bits(0x3)).unwrap();
        assert_eq!(m.rdgs().bits(), 0x3, "no interrupt yet at t≈0");
        let span = m.run_user_until(Ps::MAX);
        match span.ended_by {
            SpanEnd::Interrupt(irq) => {
                assert!(irq.footprint.cleared_as_null(DataSegReg::Gs));
            }
            SpanEnd::Deadline => panic!("expected an interrupt"),
        }
        assert_eq!(m.rdgs().bits(), 0);
    }

    #[test]
    fn deadline_span_reports_cycles() {
        let mut m = machine();
        let span = m.run_user_until(Ps::from_us(100));
        assert!(matches!(span.ended_by, SpanEnd::Deadline));
        assert!(span.cycles > 0.0);
        // ~100 us at 1.6-3.4 GHz: between 1.6e5 and 3.4e5 cycles.
        assert!(
            (1.0e5..4.0e5).contains(&span.cycles),
            "cycles {}",
            span.cycles
        );
    }

    #[test]
    fn timer_interrupts_arrive_at_hz() {
        let mut m = machine();
        let mut timers = 0;
        loop {
            let span = m.run_user_until(Ps::from_secs(2));
            match span.ended_by {
                SpanEnd::Interrupt(irq) if irq.kind == InterruptKind::Timer => timers += 1,
                SpanEnd::Interrupt(_) => {}
                SpanEnd::Deadline => break,
            }
        }
        // 250 Hz for 2 s.
        assert!((495..=505).contains(&timers), "timer count {timers}");
        assert_eq!(
            m.ground_truth().of_kind(InterruptKind::Timer).count(),
            timers
        );
    }

    #[test]
    fn rdtsc_is_monotone_and_tsd_gated() {
        let mut m = machine();
        let a = m.rdtsc().unwrap();
        m.spin(10_000);
        let b = m.rdtsc().unwrap();
        assert!(b > a);
        let mut restricted = Machine::new(MachineConfig::default().with_cr4_tsd(true), 1);
        assert_eq!(restricted.rdtsc(), Err(SimError::TimerRestricted));
        assert_eq!(
            restricted.clock_read(Ps::from_ms(1)),
            Err(SimError::TimerRestricted)
        );
    }

    #[test]
    fn clock_read_truncates_to_resolution() {
        let mut m = machine();
        m.spin(5_000_000);
        let ns = m.clock_read(Ps::from_ms(1)).unwrap();
        assert_eq!(ns % 1_000_000, 0, "1 ms resolution leaves ms multiples");
    }

    #[test]
    fn preserve_selectors_mitigation_kills_footprint() {
        let cfg = MachineConfig::default().with_preserve_selectors(true);
        let mut m = Machine::new(cfg, 2);
        m.wrgs(Selector::from_bits(0x1)).unwrap();
        for _ in 0..5 {
            let _ = m.run_user_until(Ps::MAX);
        }
        assert_eq!(
            m.rdgs().bits(),
            0x1,
            "mitigated machine preserves the marker"
        );
    }

    #[test]
    fn restricted_segment_writes_fault() {
        let cfg = MachineConfig::default().with_restricted_segment_writes(true);
        let mut m = Machine::new(cfg, 3);
        assert_eq!(
            m.wrgs(Selector::from_bits(0x1)),
            Err(SimError::SegmentWriteRestricted)
        );
    }

    #[test]
    fn tickless_machine_has_no_timer_until_reenabled() {
        let cfg = MachineConfig::default().with_tickless(true);
        let mut m = Machine::new(cfg, 4);
        m.wrgs(Selector::from_bits(0x1)).unwrap();
        let _span = m.run_user_until(Ps::from_secs(1));
        // Only PMI/resched (rare) can arrive; overwhelmingly the deadline.
        let timer_irqs = m.ground_truth().of_kind(InterruptKind::Timer).count();
        assert_eq!(timer_irqs, 0);
        // Co-locating a busy task re-activates the tick.
        m.set_timer_enabled(true);
        let mut saw_timer = false;
        for _ in 0..10 {
            if let SpanEnd::Interrupt(irq) = m.run_user_until(Ps::MAX).ended_by {
                saw_timer |= irq.kind == InterruptKind::Timer;
            }
        }
        assert!(saw_timer);
    }

    #[test]
    fn co_resident_preemption_stretches_kernel_span() {
        let mut m = machine();
        m.set_co_resident(Some(CoResident::browser()));
        let mut max_kernel = Ps::ZERO;
        for _ in 0..10 {
            if let SpanEnd::Interrupt(irq) = m.run_user_until(Ps::MAX).ended_by {
                max_kernel = max_kernel.max(irq.kernel_span);
            }
        }
        assert!(
            max_kernel >= Ps::from_us(1_500),
            "preemption slice should appear, max {max_kernel}"
        );
    }

    #[test]
    fn co_resident_gs_reload_still_changes_value() {
        let mut m = machine();
        let valid = DescriptorTables::user_data_selector();
        m.set_co_resident(Some(CoResident {
            preempt_every_ticks: 1,
            slice: Ps::from_us(500),
            gs_reload: Some(valid),
            gs_reload_prob: 1.0,
        }));
        let marker = Selector::from_bits(0x2);
        m.wrgs(marker).unwrap();
        // Wait for a timer interrupt (PMI/resched don't preempt).
        loop {
            if let SpanEnd::Interrupt(irq) = m.run_user_until(Ps::MAX).ended_by {
                if irq.kind == InterruptKind::Timer {
                    break;
                }
            }
        }
        let after = m.rdgs();
        assert_ne!(after, marker, "value changed even though it is not zero");
        assert_eq!(after, valid);
    }

    #[test]
    fn injected_device_interrupts_are_delivered() {
        let mut m = machine();
        m.inject_interrupts([
            (Ps::from_us(50), InterruptKind::Network),
            (Ps::from_us(90), InterruptKind::Gpu),
        ]);
        let mut kinds = Vec::new();
        for _ in 0..2 {
            if let SpanEnd::Interrupt(irq) = m.run_user_until(Ps::from_ms(1)).ended_by {
                kinds.push(irq.kind);
            }
        }
        assert_eq!(kinds, vec![InterruptKind::Network, InterruptKind::Gpu]);
    }

    #[test]
    fn counting_thread_advances_with_time() {
        let mut m = machine();
        let a = m.counting_thread_read();
        m.spin(1_000_000);
        let b = m.counting_thread_read();
        assert!(b > a, "counting thread must advance: {a} -> {b}");
        let delta = (b - a) as f64;
        // Roughly 1e6 / ct_iter_cycles increments.
        let expected = 1.0e6 / m.config().counting_thread_iter_cycles;
        assert!(
            (delta / expected - 1.0).abs() < 0.2,
            "delta {delta} vs expected {expected}"
        );
    }

    #[test]
    fn mem_ops_cost_cache_latencies() {
        let mut m = machine();
        let cold = m.mem_access(0x9000);
        assert_eq!(cold.level, memsim::CacheLevel::Dram);
        let warm = m.mem_access(0x9000);
        assert_eq!(warm.level, memsim::CacheLevel::L1);
        m.clflush(0x9000);
        let cold2 = m.mem_access(0x9000);
        assert_eq!(cold2.level, memsim::CacheLevel::Dram);
    }

    #[test]
    fn seed_determinism() {
        let run = |seed| {
            let mut m = Machine::new(MachineConfig::default(), seed);
            m.wrgs(Selector::from_bits(0x1)).unwrap();
            let mut ends = Vec::new();
            for _ in 0..20 {
                ends.push(m.run_user_until(Ps::MAX).end);
            }
            ends
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// Counts spans ending in an interrupt over a fixed horizon.
    fn observed_returns(mut m: Machine, horizon: Ps) -> (u64, Machine) {
        let mut observed = 0;
        while let SpanEnd::Interrupt(_) = m.run_user_until(horizon).ended_by {
            observed += 1;
        }
        (observed, m)
    }

    #[test]
    fn no_fault_plan_preserves_rng_stream() {
        // A machine with no plan must behave bit-identically to the seed
        // repo: compare against a machine with an inert (zeroed) plan
        // removed at runtime before any event fires.
        let mut plain = Machine::new(MachineConfig::default(), 0xFA117);
        let mut cleared = Machine::new(
            MachineConfig::default().with_fault_plan(irq::FaultPlan::none()),
            0xFA117,
        );
        cleared.set_fault_plan(None);
        for _ in 0..50 {
            let a = plain.run_user_until(Ps::MAX);
            let b = cleared.run_user_until(Ps::MAX);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn inert_fault_plan_changes_nothing() {
        // A zeroed plan has no delivery faults, so the machine never takes
        // the fault-rolling pop path and the stream is preserved too.
        let mut plain = Machine::new(MachineConfig::default(), 0xFA118);
        let mut inert = Machine::new(
            MachineConfig::default().with_fault_plan(irq::FaultPlan::none()),
            0xFA118,
        );
        for _ in 0..50 {
            assert_eq!(plain.run_user_until(Ps::MAX), inert.run_user_until(Ps::MAX));
        }
        assert!(inert.fault_log().is_clean());
    }

    #[test]
    fn dropped_interrupts_never_reach_the_core() {
        let horizon = Ps::from_ms(400);
        let clean = Machine::new(MachineConfig::default(), 0xD10);
        let (clean_observed, clean_m) = observed_returns(clean, horizon);
        let faulted = Machine::new(
            MachineConfig::default().with_fault_plan(irq::FaultPlan::none().with_drop_prob(0.4)),
            0xD10,
        );
        let (observed, m) = observed_returns(faulted, horizon);
        let log = m.fault_log();
        assert!(log.dropped > 0, "40% drops over 100 ticks must fire");
        assert!(observed < clean_observed);
        // Every delivery is recorded; drops are not.
        assert_eq!(m.ground_truth().len() as u64, observed);
        // Intended = delivered + dropped reproduces the clean tick count
        // (jitter can shift the boundary tick by one).
        let intended = observed + log.dropped;
        assert!(
            intended.abs_diff(clean_observed) <= 1,
            "intended {intended} vs clean {clean_observed}"
        );
        drop(clean_m);
    }

    #[test]
    fn duplicated_interrupts_add_spurious_returns() {
        let horizon = Ps::from_ms(400);
        let faulted = Machine::new(
            MachineConfig::default()
                .with_fault_plan(irq::FaultPlan::none().with_duplicate_prob(0.5)),
            0xD11,
        );
        let (observed, m) = observed_returns(faulted, horizon);
        let log = m.fault_log();
        assert!(log.duplicated > 0);
        // Ghost deliveries inflate the observed count past the intended
        // one (ghosts still pending at the horizon stay unobserved).
        let intended = observed + log.dropped - log.duplicated;
        assert!(observed > intended);
    }

    #[test]
    fn coalescing_merges_near_misses_into_one_return() {
        // A window wider than the 4 ms tick period merges every
        // subsequent tick into the first kernel stint.
        let faulted = Machine::new(
            MachineConfig::default()
                .with_fault_plan(irq::FaultPlan::none().with_coalesce_window(Ps::from_ms(5))),
            0xD12,
        );
        let (observed, m) = observed_returns(faulted, Ps::from_ms(100));
        assert!(m.fault_log().coalesced > 0);
        // Many deliveries, few observable returns.
        assert!(m.ground_truth().len() as u64 > observed);
    }

    #[test]
    fn timing_faults_keep_per_interrupt_exactness() {
        let horizon = Ps::from_ms(400);
        let faulted = Machine::new(
            MachineConfig::default().with_fault_plan(irq::FaultPlan::timing_storm()),
            0xD13,
        );
        let (observed, m) = observed_returns(faulted, horizon);
        let log = *m.fault_log();
        assert!(log.jittered > 0 && log.clamped_steps > 0);
        assert_eq!(log.delivery_faults(), 0);
        // Every intended interrupt produced exactly one observable return.
        assert_eq!(m.ground_truth().len() as u64, observed);
    }

    #[test]
    fn smt_bursts_stretch_operations() {
        let cfg = MachineConfig::default()
            .with_fault_plan(irq::FaultPlan::none().with_smt_bursts(1.0, 3.0, 8));
        let mut m = Machine::new(cfg, 0xD14);
        let t0 = m.now();
        m.spin(10_000);
        let stretched = m.now() - t0;
        let mut clean = Machine::new(MachineConfig::default(), 0xD14);
        let c0 = clean.now();
        clean.spin(10_000);
        let nominal = clean.now() - c0;
        assert!(m.fault_log().bursts > 0);
        assert!(
            stretched.as_ps() > nominal.as_ps() * 2,
            "burst factor 3 must show: {stretched} vs {nominal}"
        );
    }

    #[test]
    fn tracing_is_rng_and_timing_neutral() {
        // A traced machine must replay the untraced machine's behaviour
        // bit for bit: the sink is consulted only after every RNG draw.
        let mut plain = Machine::new(MachineConfig::default(), 0x0B5);
        let mut traced = Machine::new(MachineConfig::default(), 0x0B5);
        traced.install_trace_sink(obs::TraceSink::with_capacity(1 << 14));
        plain.wrgs(Selector::from_bits(0x2)).unwrap();
        traced.wrgs(Selector::from_bits(0x2)).unwrap();
        for _ in 0..40 {
            assert_eq!(
                plain.run_user_until(Ps::MAX),
                traced.run_user_until(Ps::MAX)
            );
        }
        assert_eq!(plain.now(), traced.now());
        // And the streams stay aligned for direct RNG reads afterwards.
        assert_eq!(plain.rng_mut().gen::<u64>(), traced.rng_mut().gen::<u64>());
    }

    #[test]
    fn trace_delivery_events_match_ground_truth() {
        let mut m = Machine::new(MachineConfig::default(), 0x0B6);
        m.install_trace_sink(obs::TraceSink::with_capacity(1 << 14));
        for _ in 0..30 {
            let _ = m.run_user_until(Ps::MAX);
        }
        let sink = m.take_trace_sink().unwrap();
        let delivered = sink.filtered(
            obs::ClassSet::of(obs::EventClass::IrqDelivered),
            0,
            u64::MAX,
        );
        assert_eq!(delivered.len(), m.ground_truth().len());
        for (event, record) in delivered.iter().zip(m.ground_truth().records()) {
            let obs::EventKind::IrqDelivered {
                irq,
                handler_cost_ps,
            } = event.kind
            else {
                unreachable!("filter returned only deliveries");
            };
            assert_eq!(event.at_ps, record.at.as_ps());
            assert_eq!(irq, obs::IrqClass::from(record.kind));
            assert_eq!(handler_cost_ps, record.handler_cost.as_ps());
        }
        assert_eq!(
            sink.metrics.counter("irq.delivered"),
            m.ground_truth().len() as u64
        );
        // Every observable return produced one KernelReturn event, and the
        // GS marker scrub produced SegClear events.
        assert!(sink.metrics.counter("kernel.returns") > 0);
    }

    #[test]
    fn trace_records_seg_clears_for_parked_marker() {
        let mut m = Machine::new(MachineConfig::default(), 0x0B7);
        m.install_trace_sink(obs::TraceSink::with_capacity(1 << 12));
        m.wrgs(Selector::from_bits(0x1)).unwrap();
        let span = m.run_user_until(Ps::MAX);
        assert!(matches!(span.ended_by, SpanEnd::Interrupt(_)));
        let sink = m.take_trace_sink().unwrap();
        let clears = sink.filtered(obs::ClassSet::of(obs::EventClass::SegClear), 0, u64::MAX);
        assert!(
            clears.iter().any(|e| matches!(
                e.kind,
                obs::EventKind::SegClear {
                    reg: obs::SegRegId::Gs,
                    null: true,
                }
            )),
            "the scrubbed GS marker must appear as a null SegClear"
        );
    }

    #[test]
    fn trace_mirrors_delivery_faults() {
        let plan = irq::FaultPlan::none()
            .with_drop_prob(0.3)
            .with_duplicate_prob(0.2);
        let mut m = Machine::new(MachineConfig::default().with_fault_plan(plan), 0x0B8);
        m.install_trace_sink(obs::TraceSink::with_capacity(1 << 14));
        while m.now() < Ps::from_ms(400) {
            let _ = m.run_user_until(Ps::from_ms(400));
        }
        let log = *m.fault_log();
        assert!(log.dropped > 0 && log.duplicated > 0);
        let sink = m.take_trace_sink().unwrap();
        assert_eq!(
            sink.count_class(obs::EventClass::IrqDropped) as u64,
            log.dropped
        );
        assert_eq!(
            sink.count_class(obs::EventClass::IrqDuplicated) as u64,
            log.duplicated
        );
    }

    #[test]
    fn kaslr_probe_ops_consume_time() {
        use memsim::KaslrLayout;
        let mut m = machine();
        m.set_kaslr(KaslrLayout::with_slot(17));
        let base = m.kaslr().unwrap().slot_base(17);
        let t0 = m.now();
        m.kernel_probe_access(base);
        assert!(m.now() > t0);
        let t1 = m.now();
        m.kernel_probe_prefetch(base);
        assert!(m.now() > t1);
    }

    /// Runs the same deterministic workload on both machines and asserts
    /// every observable (spans, selectors, cache state, fault log, ground
    /// truth, the RNG position) agrees step for step.
    fn assert_machines_equivalent(a: &mut Machine, b: &mut Machine) {
        for round in 0..40u64 {
            a.wrgs(Selector::from_bits(0x3)).unwrap();
            b.wrgs(Selector::from_bits(0x3)).unwrap();
            let sa = a.run_user_until(a.now() + Ps::from_us(800));
            let sb = b.run_user_until(b.now() + Ps::from_us(800));
            assert_eq!(sa, sb, "span diverged at round {round}");
            assert_eq!(a.rdgs(), b.rdgs(), "selector diverged at round {round}");
            a.spin(10_000);
            b.spin(10_000);
            let addr = 0x4000 + round * 0x140;
            assert_eq!(a.memory_mut().access(addr), b.memory_mut().access(addr));
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.kernel_entries(), b.kernel_entries());
        assert_eq!(a.fault_log(), b.fault_log());
        assert_eq!(a.ground_truth().records(), b.ground_truth().records());
        assert_eq!(a.memory(), b.memory());
        assert_eq!(
            a.rng_mut().gen::<u64>(),
            b.rng_mut().gen::<u64>(),
            "RNG positions diverged"
        );
    }

    #[test]
    fn reset_is_indistinguishable_from_fresh() {
        let plan = irq::FaultPlan::none()
            .with_drop_prob(0.2)
            .with_duplicate_prob(0.1);
        let target = crate::presets::by_name("honor_magicbook")
            .unwrap()
            .with_fault_plan(plan);
        // Dirty the machine thoroughly under a *different* config first:
        // kaslr layout, co-resident victim, trace sink, disabled ground
        // truth, cache contents, fault accounting, advanced time.
        let mut reused = Machine::new(MachineConfig::default(), 0xDEAD);
        reused.set_kaslr(memsim::KaslrLayout::with_slot(3));
        reused.set_co_resident(Some(CoResident::browser()));
        reused.install_trace_sink(obs::TraceSink::with_capacity(64));
        reused.ground_truth_mut().set_enabled(false);
        for _ in 0..20 {
            let deadline = reused.now() + Ps::from_ms(1);
            let _ = reused.run_user_until(deadline);
            reused.memory_mut().access(0x9000);
        }
        reused.reset(target.clone(), 0xF00D);
        let mut fresh = Machine::new(target, 0xF00D);
        assert!(reused.kaslr().is_none());
        assert!(reused.trace_sink().is_none());
        assert_machines_equivalent(&mut reused, &mut fresh);
    }

    #[test]
    fn reset_clears_a_fault_plan_when_the_new_config_has_none() {
        let plan = irq::FaultPlan::none().with_drop_prob(0.5);
        let mut reused = Machine::new(MachineConfig::default().with_fault_plan(plan), 0x11);
        while reused.fault_log().dropped == 0 {
            let deadline = reused.now() + Ps::from_ms(10);
            let _ = reused.run_user_until(deadline);
        }
        reused.reset(MachineConfig::default(), 0x11);
        assert_eq!(reused.fault_plan(), None);
        assert_eq!(*reused.fault_log(), FaultLog::default());
        let mut fresh = Machine::new(MachineConfig::default(), 0x11);
        assert_machines_equivalent(&mut reused, &mut fresh);
    }

    #[test]
    fn enclave_deliveries_classify_as_aex() {
        let mut m = machine();
        assert!(m.enter_enclave());
        let SpanEnd::Interrupt(irq) = m.run_user_until(Ps::MAX).ended_by else {
            panic!("unbounded span must end in an interrupt");
        };
        assert_eq!(irq.class, ExitClass::EnclaveAex);
        assert_eq!(m.aex_exits(), 1);
        assert!(m.enclave_active(), "no defense: the enclave survives AEX");
        m.exit_enclave();
        let SpanEnd::Interrupt(after) = m.run_user_until(Ps::MAX).ended_by else {
            panic!("unbounded span must end in an interrupt");
        };
        assert_eq!(after.class, ExitClass::Irq, "EEXIT ends AEX classification");
        assert_eq!(m.aex_exits(), 1);
        assert_eq!(m.ground_truth().count_class(ExitClass::EnclaveAex), 1);
    }

    #[test]
    fn quanshield_destroys_the_enclave_on_first_aex() {
        let cfg = MachineConfig::default().with_defense(Defense::QuanShield);
        let mut m = Machine::new(cfg, 0xAE1);
        assert!(m.enter_enclave());
        let SpanEnd::Interrupt(first) = m.run_user_until(Ps::MAX).ended_by else {
            panic!("unbounded span must end in an interrupt");
        };
        assert_eq!(first.class, ExitClass::EnclaveAex);
        assert!(m.enclave_destroyed());
        assert!(!m.enclave_active());
        assert!(!m.enter_enclave(), "a destroyed enclave refuses re-entry");
        let SpanEnd::Interrupt(later) = m.run_user_until(Ps::MAX).ended_by else {
            panic!("unbounded span must end in an interrupt");
        };
        assert_eq!(later.class, ExitClass::Irq, "dead enclave: ordinary IRQs");
        assert_eq!(m.aex_exits(), 1, "exactly one AEX worth of signal");
    }

    #[test]
    fn padding_fills_the_grid_and_reconciles_the_counters() {
        let cfg = MachineConfig::default().with_defense(Defense::default_padding());
        let mut m = Machine::new(cfg, 0xDA9);
        m.spin(20_000_000);
        let elapsed_ms = m.now().as_ps() / 1_000_000_000;
        let pads = m.padded_exits();
        // One pad per 1 ms quantum, up to grid-phase slack at both ends.
        assert!(
            pads.abs_diff(elapsed_ms) <= 2,
            "pads {pads} vs elapsed {elapsed_ms} ms"
        );
        assert_eq!(
            m.ground_truth().count_class(ExitClass::DefensePad) as u64,
            pads
        );
        assert_eq!(
            m.kernel_entries(),
            m.ground_truth().len() as u64,
            "every kernel entry (pad or IRQ) is one ground-truth record"
        );
    }

    #[test]
    fn padding_draws_no_rng() {
        // Two padded machines and one plain machine, same seed: pads must
        // be deterministic, and a padded machine's RNG position after a
        // fixed workload must equal the plain machine's (the padding path
        // performs zero draws; deliveries draw the same stream).
        let run = |defense: Defense| {
            let cfg = MachineConfig::default().with_defense(defense);
            let mut m = Machine::new(cfg, 0x9AD);
            m.spin(30_000_000);
            let tail = m.rng_mut().gen::<u64>();
            (m.now(), m.kernel_entries(), m.padded_exits(), tail)
        };
        let a = run(Defense::default_padding());
        let b = run(Defense::default_padding());
        assert_eq!(a, b, "padding must be bit-deterministic");
        let plain = run(Defense::None);
        assert_eq!(a.3, plain.3, "pads must not move the RNG position");
        assert!(a.2 > 0 && plain.2 == 0);
    }

    #[test]
    fn enclave_windows_preserve_timing_and_rng() {
        // Entering/leaving the enclave only re-labels deliveries; span
        // timing and the RNG stream must match a machine that never
        // touches the enclave API.
        let mut plain = Machine::new(MachineConfig::default(), 0xE9C);
        let mut enclaved = Machine::new(MachineConfig::default(), 0xE9C);
        for round in 0..30 {
            if round % 3 == 0 {
                assert!(enclaved.enter_enclave());
            } else if round % 3 == 2 {
                enclaved.exit_enclave();
            }
            let a = plain.run_user_until(Ps::MAX);
            let b = enclaved.run_user_until(Ps::MAX);
            assert_eq!(a.end, b.end, "span timing diverged at round {round}");
            assert_eq!(a.cycles, b.cycles);
        }
        assert!(enclaved.aex_exits() > 0);
        assert_eq!(plain.now(), enclaved.now());
        assert_eq!(
            plain.rng_mut().gen::<u64>(),
            enclaved.rng_mut().gen::<u64>(),
            "RNG positions diverged"
        );
    }

    #[test]
    fn reset_after_restore_is_indistinguishable_from_fresh() {
        // `restore` swaps in snapshot state wholesale (fabric rebuilt
        // from a snapshot, RNG forced to an arbitrary mid-stream
        // position); a later `reset` must still reproduce `Machine::new`
        // exactly, leaving no residue of the restored image behind.
        let target = crate::presets::by_name("amazon_t2_large")
            .unwrap()
            .with_fault_plan(irq::FaultPlan::none().with_drop_prob(0.25));
        let mut reused = Machine::new(crate::presets::by_name("lenovo_savior").unwrap(), 0xBEEF);
        reused.set_kaslr(memsim::KaslrLayout::with_slot(7));
        for _ in 0..15 {
            let deadline = reused.now() + Ps::from_ms(1);
            let _ = reused.run_user_until(deadline);
            reused.memory_mut().access(0xA000);
        }
        let snap = reused.snapshot();
        // Drift past the snapshot, then restore into the past.
        reused.spin(2_000_000);
        reused.restore(&snap);
        reused.reset(target.clone(), 0xF00D);
        let mut fresh = Machine::new(target, 0xF00D);
        assert_machines_equivalent(&mut reused, &mut fresh);
    }
}
