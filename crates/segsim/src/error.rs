//! Machine-level faults visible to guest code.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use x86seg::SegError;

/// Faults a guest operation can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// `CR4.TSD` is set: unprivileged timestamp instructions fault
    /// (the paper's timer-constrained threat model).
    TimerRestricted,
    /// The segment-write restriction mitigation is active.
    SegmentWriteRestricted,
    /// An architectural segmentation fault (`#GP`/`#NP`).
    Segment(SegError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TimerRestricted => {
                write!(f, "unprivileged timestamp read faulted (CR4.TSD set)")
            }
            SimError::SegmentWriteRestricted => {
                write!(
                    f,
                    "unprivileged segment-register write restricted by policy"
                )
            }
            SimError::Segment(e) => write!(f, "segmentation fault: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Segment(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SegError> for SimError {
    fn from(e: SegError) -> Self {
        SimError::Segment(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::Segment(SegError::NullSegmentAccess);
        assert!(e.to_string().contains("segmentation fault"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&SimError::TimerRestricted).is_none());
    }

    #[test]
    fn from_seg_error() {
        let e: SimError = SegError::NullSegmentAccess.into();
        assert_eq!(e, SimError::Segment(SegError::NullSegmentAccess));
    }
}
