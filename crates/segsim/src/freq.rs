//! The DVFS frequency model: a P-state governor whose steady state depends
//! on load and power draw, with first-order lag, quantized P-states, and
//! Gaussian wander.
//!
//! This is the substrate for everything frequency-related in the paper:
//! SegCnt ∝ Freq (Eq. 1, Fig. 3), the Hertzbleed-style CIRCL key
//! extraction (Fig. 8: a correct key-bit guess triggers an anomalous-zero
//! computation that draws *less* power, letting the core sustain a *higher*
//! frequency), and the `scaling_cur_freq` sysfs interface the attacker may
//! read for normalization.

use irq::dist;
use irq::time::Ps;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static configuration of a core's frequency domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqConfig {
    /// Minimum P-state, kHz.
    pub min_khz: u64,
    /// Base (guaranteed, non-turbo) frequency, kHz. The invariant TSC also
    /// ticks at this rate.
    pub base_khz: u64,
    /// Maximum single-core turbo frequency, kHz.
    pub max_khz: u64,
    /// P-state quantization step, kHz (100 MHz on modern Intel/AMD).
    pub step_khz: u64,
    /// Governor re-evaluation period.
    pub update_period: Ps,
    /// First-order lag applied per update (0 = frozen, 1 = instant).
    pub alpha: f64,
    /// Gaussian wander added per update, kHz.
    pub noise_std_khz: f64,
    /// How strongly excess power draw depresses the sustained frequency,
    /// kHz per unit of power-excess (the Hertzbleed coupling).
    pub power_coeff_khz: f64,
}

impl FreqConfig {
    /// A mobile-class CPU: 400 MHz–3.4 GHz turbo around a 1.6 GHz base.
    #[must_use]
    pub fn mobile(base_mhz: u64, max_mhz: u64) -> Self {
        FreqConfig {
            min_khz: 400_000,
            base_khz: base_mhz * 1_000,
            max_khz: max_mhz * 1_000,
            step_khz: 100_000,
            update_period: Ps::from_ms(1),
            alpha: 0.35,
            noise_std_khz: 7_000.0,
            power_coeff_khz: 300_000.0,
        }
    }

    /// A desktop/server CPU: higher base, tighter wander.
    #[must_use]
    pub fn desktop(base_mhz: u64, max_mhz: u64) -> Self {
        FreqConfig {
            min_khz: 800_000,
            base_khz: base_mhz * 1_000,
            max_khz: max_mhz * 1_000,
            step_khz: 100_000,
            update_period: Ps::from_ms(1),
            alpha: 0.45,
            noise_std_khz: 5_000.0,
            power_coeff_khz: 250_000.0,
        }
    }
}

impl Default for FreqConfig {
    fn default() -> Self {
        FreqConfig::mobile(1_600, 3_400)
    }
}

/// A right-continuous step function of time (used for victim load and
/// power-draw schedules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StepFn {
    /// (time, value) steps, strictly increasing in time.
    steps: Vec<(Ps, f64)>,
}

impl StepFn {
    /// A step function that is `0.0` everywhere.
    #[must_use]
    pub fn zero() -> Self {
        StepFn::default()
    }

    /// A constant function.
    #[must_use]
    pub fn constant(value: f64) -> Self {
        StepFn {
            steps: vec![(Ps::ZERO, value)],
        }
    }

    /// Appends a step at `at` (must not precede the last step).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last step.
    pub fn push(&mut self, at: Ps, value: f64) {
        if let Some(&(last, _)) = self.steps.last() {
            assert!(at >= last, "steps must be time-ordered");
        }
        self.steps.push((at, value));
    }

    /// The value at time `t` (0.0 before the first step).
    #[must_use]
    pub fn value_at(&self, t: Ps) -> f64 {
        match self.steps.partition_point(|&(at, _)| at <= t) {
            0 => 0.0,
            n => self.steps[n - 1].1,
        }
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the function has no steps (identically zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The dynamic frequency model of one core's voltage/frequency domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreqModel {
    config: FreqConfig,
    cur_khz: u64,
    next_update: Ps,
    /// Load contributed by the locally running (attacker) task, 0..=1.
    local_load: f64,
    /// Load contributed by other tasks in the domain (victim workloads).
    external_load: StepFn,
    /// Data-dependent power excess (Hertzbleed input), arbitrary units.
    power_excess: StepFn,
    /// When set, DVFS is disabled and the frequency is pinned here
    /// (the `cpufreq-set` setting of Table IV).
    pinned_khz: Option<u64>,
    /// Cached sysfs value: `scaling_cur_freq` only refreshes every ~10 ms.
    sysfs_khz: u64,
    sysfs_next_refresh: Ps,
    /// Fault injection: bound on how far one update may move `cur_khz`.
    step_clamp_khz: Option<u64>,
}

impl FreqModel {
    /// Creates a model idling at the base frequency.
    #[must_use]
    pub fn new(config: FreqConfig) -> Self {
        FreqModel {
            cur_khz: config.base_khz,
            next_update: config.update_period,
            local_load: 0.0,
            external_load: StepFn::zero(),
            power_excess: StepFn::zero(),
            pinned_khz: None,
            sysfs_khz: config.base_khz,
            sysfs_next_refresh: Ps::ZERO,
            step_clamp_khz: None,
            config,
        }
    }

    /// Installs (or removes) a fault-injection clamp on the per-update
    /// frequency step. [`FreqModel::tick`] reports when it bites.
    pub fn set_step_clamp(&mut self, khz: Option<u64>) {
        self.step_clamp_khz = khz;
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &FreqConfig {
        &self.config
    }

    /// The instantaneous core frequency, kHz.
    #[inline]
    #[must_use]
    pub fn current_khz(&self) -> u64 {
        self.pinned_khz.unwrap_or(self.cur_khz)
    }

    /// When the governor next re-evaluates.
    #[inline]
    #[must_use]
    pub fn next_update_at(&self) -> Ps {
        if self.pinned_khz.is_some() {
            Ps::MAX
        } else {
            self.next_update
        }
    }

    /// Sets the load of the locally running task (1.0 for a spin loop).
    pub fn set_local_load(&mut self, load: f64) {
        self.local_load = load.clamp(0.0, 1.0);
    }

    /// Replaces the external (victim) load schedule.
    pub fn set_external_load(&mut self, schedule: StepFn) {
        self.external_load = schedule;
    }

    /// Replaces the data-dependent power-excess schedule.
    pub fn set_power_excess(&mut self, schedule: StepFn) {
        self.power_excess = schedule;
    }

    /// Pins the frequency (DVFS disabled), or unpins with `None`.
    pub fn pin(&mut self, khz: Option<u64>) {
        self.pinned_khz = khz;
        if let Some(k) = khz {
            self.sysfs_khz = k;
        }
    }

    /// Runs one governor update at time `now` (callers invoke this when
    /// `now >= next_update_at()`), returning whether the fault-injection
    /// step clamp limited the move.
    pub fn tick<R: Rng + ?Sized>(&mut self, now: Ps, rng: &mut R) -> bool {
        if self.pinned_khz.is_some() {
            return false;
        }
        let cfg = self.config;
        let load = (self.local_load + self.external_load.value_at(now)).clamp(0.0, 1.0);
        let span = (cfg.max_khz - cfg.min_khz) as f64;
        let mut target = cfg.min_khz as f64 + span * load;
        // Hertzbleed coupling: power-hungry data sequences depress the
        // sustainable frequency.
        target -= self.power_excess.value_at(now) * cfg.power_coeff_khz;
        let cur = self.cur_khz as f64;
        let mut next = cur + cfg.alpha * (target - cur) + dist::normal(rng, 0.0, cfg.noise_std_khz);
        next = next.clamp(cfg.min_khz as f64, cfg.max_khz as f64);
        let mut clamped = false;
        if let Some(limit) = self.step_clamp_khz {
            let limit = limit as f64;
            let delta = next - cur;
            if delta.abs() > limit {
                next = cur + delta.signum() * limit;
                clamped = true;
            }
        }
        // Quantize to P-states.
        let step = cfg.step_khz as f64;
        self.cur_khz = ((next / step).round() * step) as u64;
        self.next_update = now + cfg.update_period;
        // Refresh the sysfs snapshot at a coarser cadence.
        if now >= self.sysfs_next_refresh {
            self.sysfs_khz = self.cur_khz;
            self.sysfs_next_refresh = now + Ps::from_ms(10);
        }
        clamped
    }

    /// The value an unprivileged read of `scaling_cur_freq` returns at
    /// time `now` (a stale snapshot refreshed every ~10 ms).
    #[must_use]
    pub fn sysfs_khz(&self, _now: Ps) -> u64 {
        self.pinned_khz.unwrap_or(self.sysfs_khz)
    }
}

impl Default for FreqModel {
    fn default() -> Self {
        FreqModel::new(FreqConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run_until(model: &mut FreqModel, until: Ps, rng: &mut SmallRng) {
        let mut now = model.next_update_at();
        while now <= until {
            model.tick(now, rng);
            now = model.next_update_at();
        }
    }

    #[test]
    fn step_fn_basics() {
        let mut f = StepFn::zero();
        assert_eq!(f.value_at(Ps::from_ms(5)), 0.0);
        f.push(Ps::from_ms(1), 0.5);
        f.push(Ps::from_ms(3), 1.0);
        assert_eq!(f.value_at(Ps::ZERO), 0.0);
        assert_eq!(f.value_at(Ps::from_ms(1)), 0.5);
        assert_eq!(f.value_at(Ps::from_ms(2)), 0.5);
        assert_eq!(f.value_at(Ps::from_ms(3)), 1.0);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn step_fn_rejects_unordered() {
        let mut f = StepFn::zero();
        f.push(Ps::from_ms(2), 1.0);
        f.push(Ps::from_ms(1), 0.0);
    }

    #[test]
    fn full_load_drives_frequency_up() {
        let mut rng = SmallRng::seed_from_u64(0xF0);
        let mut model = FreqModel::default();
        model.set_local_load(1.0);
        run_until(&mut model, Ps::from_ms(200), &mut rng);
        assert!(
            model.current_khz() > 3_000_000,
            "loaded core should turbo, got {} kHz",
            model.current_khz()
        );
    }

    #[test]
    fn idle_core_settles_low() {
        let mut rng = SmallRng::seed_from_u64(0xF1);
        let mut model = FreqModel::default();
        model.set_local_load(0.0);
        run_until(&mut model, Ps::from_ms(200), &mut rng);
        assert!(
            model.current_khz() < 1_000_000,
            "idle core should downclock, got {} kHz",
            model.current_khz()
        );
    }

    #[test]
    fn power_excess_depresses_frequency() {
        let mut rng = SmallRng::seed_from_u64(0xF2);
        let mut hot = FreqModel::default();
        hot.set_local_load(1.0);
        hot.set_power_excess(StepFn::constant(1.0));
        let mut cool = FreqModel::default();
        cool.set_local_load(1.0);
        run_until(&mut hot, Ps::from_ms(300), &mut rng);
        let mut rng2 = SmallRng::seed_from_u64(0xF2);
        run_until(&mut cool, Ps::from_ms(300), &mut rng2);
        assert!(
            hot.current_khz() + 150_000 < cool.current_khz(),
            "hot {} vs cool {}",
            hot.current_khz(),
            cool.current_khz()
        );
    }

    #[test]
    fn pinning_freezes_frequency() {
        let mut rng = SmallRng::seed_from_u64(0xF3);
        let mut model = FreqModel::default();
        model.pin(Some(2_500_000));
        model.set_local_load(1.0);
        assert_eq!(model.next_update_at(), Ps::MAX);
        model.tick(Ps::from_ms(1), &mut rng);
        assert_eq!(model.current_khz(), 2_500_000);
        assert_eq!(model.sysfs_khz(Ps::from_ms(1)), 2_500_000);
        model.pin(None);
        assert!(model.next_update_at() < Ps::MAX);
    }

    #[test]
    fn frequency_is_quantized_to_pstates() {
        let mut rng = SmallRng::seed_from_u64(0xF4);
        let mut model = FreqModel::default();
        model.set_local_load(0.7);
        run_until(&mut model, Ps::from_ms(50), &mut rng);
        assert_eq!(model.current_khz() % model.config().step_khz, 0);
    }

    #[test]
    fn step_clamp_limits_per_update_moves() {
        let mut rng = SmallRng::seed_from_u64(0xF7);
        let mut model = FreqModel::default();
        model.set_local_load(1.0);
        model.set_step_clamp(Some(100_000));
        let mut any_clamped = false;
        let mut prev = model.current_khz();
        for ms in 1..=100 {
            let clamped = model.tick(Ps::from_ms(ms), &mut rng);
            any_clamped |= clamped;
            let cur = model.current_khz();
            // One quantization step of slack on top of the clamp.
            assert!(
                cur.abs_diff(prev) <= 100_000 + model.config().step_khz / 2,
                "step {} -> {} exceeds clamp",
                prev,
                cur
            );
            prev = cur;
        }
        assert!(any_clamped, "a cold loaded core must hit a 100 MHz clamp");
    }

    #[test]
    fn sysfs_lags_behind_current() {
        let mut rng = SmallRng::seed_from_u64(0xF5);
        let mut model = FreqModel::default();
        model.set_local_load(1.0);
        // One tick at 1 ms: sysfs refreshes (first refresh due at 0).
        model.tick(Ps::from_ms(1), &mut rng);
        let snap = model.sysfs_khz(Ps::from_ms(1));
        // Several more ticks within the 10 ms window must not move sysfs.
        for ms in 2..9 {
            model.tick(Ps::from_ms(ms), &mut rng);
        }
        assert_eq!(model.sysfs_khz(Ps::from_ms(8)), snap);
    }

    #[test]
    fn external_load_counts_toward_target() {
        let mut rng = SmallRng::seed_from_u64(0xF6);
        let mut model = FreqModel::default();
        model.set_local_load(0.0);
        model.set_external_load(StepFn::constant(1.0));
        run_until(&mut model, Ps::from_ms(200), &mut rng);
        assert!(model.current_khz() > 3_000_000);
    }
}
