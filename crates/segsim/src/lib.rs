//! `segsim` — the deterministic discrete-event x86 machine simulator the
//! SegScope reproduction runs on.
//!
//! One [`Machine`] models the attacker-observable logical core of a
//! Table I test machine:
//!
//! * picosecond-resolution time with CPU cycles integrated over a
//!   piecewise-constant DVFS frequency ([`FreqModel`]),
//! * a per-core interrupt fabric (APIC timer, PMIs, rescheduling IPIs,
//!   injected device interrupts) from the [`irq`] crate,
//! * the x86 segment-register file with Algorithm 1's selector scrub on
//!   every kernel→user return (from [`x86seg`]),
//! * an invariant TSC (`rdtsc`/`rdpru`) optionally gated by `CR4.TSD`,
//! * a cache hierarchy and KASLR layout (from [`memsim`]),
//! * microarchitectural noise models (per-op jitter, heavy-tail stalls,
//!   SMT-sibling contention, hypervisor steal time).
//!
//! Guest code drives the machine through operations ([`Machine::wrgs`],
//! [`Machine::rdgs`], [`Machine::rdtsc`], [`Machine::mem_access`], …),
//! while the analytic fast path [`Machine::run_user_until`] lets probing
//! loops cover millions of interrupts cheaply and exactly.
//!
//! # Example: the SegScope footprint end to end
//!
//! ```
//! use segsim::{Machine, MachineConfig, SpanEnd};
//! use x86seg::Selector;
//!
//! let mut m = Machine::new(MachineConfig::xiaomi_air13(), 1234);
//! m.wrgs(Selector::from_bits(0x1))?; // plant a non-zero null selector
//! let span = m.run_user_until(irq::Ps::MAX);
//! assert!(matches!(span.ended_by, SpanEnd::Interrupt(_)));
//! assert!(m.rdgs().is_zero()); // the footprint
//! # Ok::<(), segsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod core;
mod error;
mod freq;
pub mod presets;
mod snapshot;

pub use crate::core::{CoResident, DeliveredIrq, Machine, SpanEnd, UserSpan};
pub use batch::MachineBatch;
pub use config::{Defense, Hypervisor, MachineConfig, NoiseModel, Vendor};
pub use error::SimError;
pub use freq::{FreqConfig, FreqModel, StepFn};
pub use snapshot::Snapshot;

// Re-export the time unit so downstream crates need not spell `irq::Ps`.
pub use irq::Ps;

// Re-export the fault-injection types configured via
// [`MachineConfig::with_fault_plan`] and audited via
// [`Machine::fault_log`].
pub use irq::{FaultLog, FaultPlan};

// Re-export the kernel-exit taxonomy so scenario code can classify
// deliveries without depending on `irq` directly.
pub use irq::{ExitClass, KernelExit};

// Re-export the observability sink installed via
// [`Machine::install_trace_sink`] so callers need not depend on `obs`
// directly for the common case.
pub use obs::TraceSink;
