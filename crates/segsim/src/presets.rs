//! Named lookup of the Table I machine presets.
//!
//! Every entry point that selects a machine by name — the `segscope`
//! CLI's `--machine` flag, scenario params, examples — resolves through
//! [`by_name`], so the preset list exists in exactly one place.

use crate::config::MachineConfig;

/// The canonical preset names, in Table I row order.
pub const NAMES: [&str; 6] = [
    "xiaomi_air13",
    "lenovo_yangtian",
    "lenovo_savior",
    "honor_magicbook",
    "amazon_t2_large",
    "amazon_c5_large",
];

/// Resolves a Table I preset by its canonical snake_case name.
///
/// Returns `None` for unknown names; [`NAMES`] lists the accepted set.
#[must_use]
pub fn by_name(name: &str) -> Option<MachineConfig> {
    match name {
        "xiaomi_air13" => Some(MachineConfig::xiaomi_air13()),
        "lenovo_yangtian" => Some(MachineConfig::lenovo_yangtian()),
        "lenovo_savior" => Some(MachineConfig::lenovo_savior()),
        "honor_magicbook" => Some(MachineConfig::honor_magicbook()),
        "amazon_t2_large" => Some(MachineConfig::amazon_t2_large()),
        "amazon_c5_large" => Some(MachineConfig::amazon_c5_large()),
        _ => None,
    }
}

/// All presets paired with their canonical names, in Table I row order.
#[must_use]
pub fn all() -> Vec<(&'static str, MachineConfig)> {
    NAMES
        .iter()
        .map(|&n| (n, by_name(n).expect("NAMES entries resolve")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_matches_table1() {
        let table1 = MachineConfig::table1();
        assert_eq!(NAMES.len(), table1.len());
        for (named, row) in all().iter().map(|(_, m)| m).zip(table1.iter()) {
            assert_eq!(named, row);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("cray_1").is_none());
        assert!(by_name("").is_none());
        assert!(
            by_name("Xiaomi_Air13").is_none(),
            "lookup is case-sensitive"
        );
    }
}
