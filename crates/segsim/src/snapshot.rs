//! Compact, serializable machine snapshots with restore-exact semantics.
//!
//! A [`Snapshot`] captures everything that determines a [`Machine`]'s
//! future behaviour: the configuration, the exact RNG position, simulated
//! time, the frequency/governor state, the interrupt fabric (source
//! models, armed arrivals, undelivered one-shots), segment registers and
//! descriptor tables, the cache hierarchy in canonical form, the
//! ground-truth cursor, and the counting-thread accumulators.
//!
//! Restore-exactness is the contract: a machine restored from a snapshot
//! and driven forward produces bit-identical observables (spans, samples,
//! fault log, ground truth, RNG position) to the machine that was never
//! paused. The `tests/snapshot_roundtrip.rs` proptests enforce this
//! across all vendor presets × fault plans × random pause points, through
//! a full JSON serialize/deserialize cycle.
//!
//! What is deliberately *not* captured:
//!
//! * the observability sink — tracing is RNG- and timing-neutral by
//!   construction, so it is not machine state; [`Machine::restore`]
//!   leaves the machine untraced and callers reinstall a sink if wanted;
//! * derived fabric state (calendar heap, cached head) — rebuilt from the
//!   canonical source list on restore;
//! * stale cache lines — the hierarchy is canonicalized on capture, so
//!   two behaviourally identical machines produce equal (and
//!   byte-identical once serialized) snapshots.

use crate::config::MachineConfig;
use crate::core::{CoResident, Machine};
use crate::freq::FreqModel;
use irq::time::Ps;
use irq::{FabricSnapshot, FaultLog, FaultPlan, GroundTruth, InterruptFabric, SourceId};
use memsim::{KaslrLayout, MemoryHierarchy};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use x86seg::{DescriptorTables, SegmentRegisterFile};

/// A complete, self-contained image of a [`Machine`] at one instant.
///
/// `PartialEq` over snapshots means "these machines behave identically
/// from here" — every field is canonical (see the module docs), so the
/// divergence bisector can compare snapshots directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    config: MachineConfig,
    /// Exact xoshiro256++ position of the machine RNG.
    rng_state: [u64; 4],
    now: Ps,
    freq: FreqModel,
    fabric: FabricSnapshot,
    timer_source: Option<SourceId>,
    ground_truth: GroundTruth,
    regs: SegmentRegisterFile,
    tables: DescriptorTables,
    /// Cache hierarchy in canonical (stale-line-free) form.
    mem: MemoryHierarchy,
    kaslr: Option<KaslrLayout>,
    co_resident: Option<CoResident>,
    timer_ticks_seen: u32,
    kernel_entries: u64,
    domain_cycles: f64,
    ct_drift: f64,
    ct_last_kernel_entries: u64,
    pending_refill: f64,
    fault_plan: Option<FaultPlan>,
    fault_log: FaultLog,
    smt_burst_left: u32,
    /// Enclave / countermeasure state: all of it is machine state (a
    /// restored machine must keep a destroyed enclave destroyed and the
    /// padding grid phase-aligned).
    enclave_active: bool,
    enclave_destroyed: bool,
    aex_exits: u64,
    padded_exits: u64,
    next_pad_at: Option<Ps>,
}

impl Snapshot {
    /// The simulated instant the snapshot was taken at.
    #[must_use]
    pub fn now(&self) -> Ps {
        self.now
    }

    /// The captured machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The captured RNG position (for audit/debug display).
    #[must_use]
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng_state
    }

    /// Number of kernel entries at capture time.
    #[must_use]
    pub fn kernel_entries(&self) -> u64 {
        self.kernel_entries
    }

    /// Number of ground-truth interrupt records at capture time (the
    /// "cursor" a replay driver aligns event indices against).
    #[must_use]
    pub fn ground_truth_len(&self) -> usize {
        self.ground_truth.len()
    }
}

impl Machine {
    /// Captures a restore-exact [`Snapshot`] of this machine.
    ///
    /// Pure read (the machine is unchanged): the cache hierarchy is
    /// canonicalized on a clone, and the installed trace sink — if any —
    /// is neither captured nor disturbed.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut mem = self.mem.clone();
        mem.canonicalize();
        Snapshot {
            config: self.config.clone(),
            rng_state: self.rng.state(),
            now: self.now,
            freq: self.freq.clone(),
            fabric: self.fabric.snapshot(),
            timer_source: self.timer_source,
            ground_truth: self.ground_truth.clone(),
            regs: self.regs.clone(),
            tables: self.tables.clone(),
            mem,
            kaslr: self.kaslr.clone(),
            co_resident: self.co_resident,
            timer_ticks_seen: self.timer_ticks_seen,
            kernel_entries: self.kernel_entries,
            domain_cycles: self.domain_cycles,
            ct_drift: self.ct_drift,
            ct_last_kernel_entries: self.ct_last_kernel_entries,
            pending_refill: self.pending_refill,
            fault_plan: self.fault_plan,
            fault_log: self.fault_log,
            smt_burst_left: self.smt_burst_left,
            enclave_active: self.enclave_active,
            enclave_destroyed: self.enclave_destroyed,
            aex_exits: self.aex_exits,
            padded_exits: self.padded_exits,
            next_pad_at: self.next_pad_at,
        }
    }

    /// Restores this machine in place to the captured state, reusing
    /// existing allocations where possible.
    ///
    /// Restore-exact: driving the restored machine forward is
    /// bit-identical to never having paused the original. The trace sink
    /// is cleared (tracing is not machine state; reinstall one with
    /// [`Machine::install_trace_sink`] to trace the continuation).
    pub fn restore(&mut self, snap: &Snapshot) {
        self.config = snap.config.clone();
        self.rng = SmallRng::from_state(snap.rng_state);
        self.now = snap.now;
        self.freq = snap.freq.clone();
        self.fabric = InterruptFabric::from_snapshot(&snap.fabric);
        self.timer_source = snap.timer_source;
        self.ground_truth = snap.ground_truth.clone();
        self.regs = snap.regs.clone();
        self.tables = snap.tables.clone();
        self.mem = snap.mem.clone();
        self.kaslr = snap.kaslr.clone();
        self.co_resident = snap.co_resident;
        self.timer_ticks_seen = snap.timer_ticks_seen;
        self.kernel_entries = snap.kernel_entries;
        self.domain_cycles = snap.domain_cycles;
        self.ct_drift = snap.ct_drift;
        self.ct_last_kernel_entries = snap.ct_last_kernel_entries;
        self.pending_refill = snap.pending_refill;
        self.fault_plan = snap.fault_plan;
        self.fault_log = snap.fault_log;
        self.smt_burst_left = snap.smt_burst_left;
        self.enclave_active = snap.enclave_active;
        self.enclave_destroyed = snap.enclave_destroyed;
        self.aex_exits = snap.aex_exits;
        self.padded_exits = snap.padded_exits;
        self.next_pad_at = snap.next_pad_at;
        self.sink = None;
    }

    /// Builds a fresh machine directly from a snapshot.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        // Boot a minimal machine, then overwrite everything: cheaper to
        // reason about than a second field-by-field constructor, and the
        // restore path stays the single source of truth.
        let mut machine = Machine::new(snap.config.clone(), 0);
        machine.restore(snap);
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irq::InterruptKind;
    use x86seg::Selector;

    fn worked_machine() -> Machine {
        let plan = FaultPlan::none()
            .with_drop_prob(0.15)
            .with_duplicate_prob(0.1);
        let config = crate::presets::by_name("lenovo_savior")
            .unwrap()
            .with_fault_plan(plan);
        let mut m = Machine::new(config, 0x51AB);
        m.wrgs(Selector::from_bits(0x3)).unwrap();
        for _ in 0..25 {
            let deadline = m.now() + Ps::from_us(700);
            let _ = m.run_user_until(deadline);
            m.spin(5_000);
            m.memory_mut().access(0x8000);
        }
        m
    }

    /// Drives `m` through a fixed observable workload, returning every
    /// observable output.
    fn drive(m: &mut Machine, rounds: u64) -> Vec<(Ps, u16, u64)> {
        let mut out = Vec::new();
        for round in 0..rounds {
            m.wrgs(Selector::from_bits(0x3)).unwrap();
            let deadline = m.now() + Ps::from_us(900);
            let _ = m.run_user_until(deadline);
            let sel = m.rdgs().bits();
            m.mem_access(0x6000 + round * 0x180);
            out.push((m.now(), sel, m.kernel_entries()));
        }
        out
    }

    #[test]
    fn restore_then_continue_is_bit_identical_to_never_pausing() {
        let mut uninterrupted = worked_machine();
        let mut paused = worked_machine();
        let snap = paused.snapshot();
        // Wreck the paused machine, then restore.
        paused.spin(1_000_000);
        paused.reset(MachineConfig::default(), 99);
        paused.restore(&snap);
        assert_eq!(drive(&mut uninterrupted, 30), drive(&mut paused, 30));
        assert_eq!(uninterrupted.fault_log(), paused.fault_log());
        assert_eq!(
            uninterrupted.ground_truth().records(),
            paused.ground_truth().records()
        );
        assert_eq!(uninterrupted.rng_mut().state(), paused.rng_mut().state());
    }

    #[test]
    fn from_snapshot_equals_in_place_restore() {
        let m = worked_machine();
        let snap = m.snapshot();
        let mut a = Machine::from_snapshot(&snap);
        let mut b = m;
        b.restore(&snap);
        assert_eq!(drive(&mut a, 20), drive(&mut b, 20));
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_is_a_pure_read() {
        let mut a = worked_machine();
        let mut b = worked_machine();
        let _ = a.snapshot();
        let _ = a.snapshot();
        assert_eq!(drive(&mut a, 20), drive(&mut b, 20));
        assert_eq!(a.rng_mut().state(), b.rng_mut().state());
    }

    #[test]
    fn snapshots_of_identical_machines_are_equal_and_json_stable() {
        let a = worked_machine();
        let b = worked_machine();
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa, sb);
        let (ja, jb) = (
            serde_json::to_string(&sa).unwrap(),
            serde_json::to_string(&sb).unwrap(),
        );
        assert_eq!(ja, jb, "canonical snapshots serialize byte-identically");
        let back: Snapshot = serde_json::from_str(&ja).unwrap();
        assert_eq!(back, sa, "JSON round-trip is lossless");
    }

    #[test]
    fn restore_drops_the_trace_sink_but_keeps_behaviour() {
        let mut traced = worked_machine();
        traced.install_trace_sink(obs::TraceSink::with_capacity(1 << 12));
        let snap = traced.snapshot();
        assert!(traced.trace_sink().is_some(), "snapshot leaves the sink");
        traced.restore(&snap);
        assert!(traced.trace_sink().is_none(), "restore clears the sink");
        let mut plain = worked_machine();
        assert_eq!(drive(&mut traced, 20), drive(&mut plain, 20));
    }

    #[test]
    fn snapshot_survives_injected_one_shots_and_kaslr() {
        let mut m = worked_machine();
        m.set_kaslr(memsim::KaslrLayout::with_slot(11));
        m.inject_interrupts([
            (m.now() + Ps::from_ms(3), InterruptKind::Network),
            (m.now() + Ps::from_ms(7), InterruptKind::Gpu),
        ]);
        let snap = m.snapshot();
        let mut restored = Machine::from_snapshot(&snap);
        assert_eq!(drive(&mut m, 25), drive(&mut restored, 25));
        assert_eq!(
            m.ground_truth().records(),
            restored.ground_truth().records()
        );
    }
}
