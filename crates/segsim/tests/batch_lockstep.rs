//! Differential property tests: a [`MachineBatch`] driven through random
//! lockstep-op interleavings must be bit-identical, lane for lane, to the
//! same `(config, seed)` pairs run on scalar [`Machine`]s — same
//! deliveries, same fault logs, same ground-truth traces, same final RNG
//! positions.

use irq::time::Ps;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use segsim::{FaultPlan, Machine, MachineBatch, MachineConfig};
use x86seg::Selector;

/// One lockstep operation, decoded from an opcode stream.
#[derive(Debug, Clone, Copy)]
enum BatchOp {
    Wrgs(u16),
    Spin(u64),
    Rdgs,
    RunUntil(Ps),
}

/// Decodes raw opcodes into ops, drawing parameters from a dedicated
/// generator rng (so parameter choice never touches the lane streams).
fn decode_ops(codes: &[u8], seed: u64) -> Vec<BatchOp> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA7C_0DE5);
    codes
        .iter()
        .map(|code| match code % 6 {
            0 => BatchOp::Wrgs(rng.gen_range(1u16..4)),
            1 | 2 => BatchOp::Spin(rng.gen_range(1_000u64..200_000)),
            3 => BatchOp::Rdgs,
            _ => BatchOp::RunUntil(Ps::from_us(rng.gen_range(50u64..2_000))),
        })
        .collect()
}

/// Per-lane configs that differ in preset and fault plan, so the lanes'
/// streams cannot accidentally agree.
fn lane_configs(seed: u64, lanes: usize) -> Vec<(MachineConfig, u64)> {
    let presets = MachineConfig::table1();
    (0..lanes)
        .map(|i| {
            let mut config = presets[(seed as usize + i) % presets.len()].clone();
            if i % 3 == 1 {
                config = config.with_fault_plan(
                    FaultPlan::none()
                        .with_drop_prob(0.1)
                        .with_duplicate_prob(0.05),
                );
            }
            (
                config,
                seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op interleavings: batched lanes == scalar machines,
    /// delivery for delivery and draw for draw.
    #[test]
    fn lockstep_interleavings_match_scalar(
        codes in prop::collection::vec(0u8..6, 1..30),
        seed in 0u64..10_000,
        lanes in 1usize..6,
    ) {
        let ops = decode_ops(&codes, seed);
        let configs = lane_configs(seed, lanes);
        let mut batch = MachineBatch::from_configs(configs.clone());
        let mut scalar: Vec<Machine> = configs
            .iter()
            .map(|(c, s)| Machine::new(c.clone(), *s))
            .collect();
        for op in &ops {
            match *op {
                BatchOp::Wrgs(bits) => {
                    let _ = batch.wrgs_all(Selector::from_bits(bits));
                    for m in &mut scalar {
                        let _ = m.wrgs(Selector::from_bits(bits));
                    }
                }
                BatchOp::Spin(cycles) => {
                    batch.spin_all(cycles);
                    for m in &mut scalar {
                        m.spin(cycles);
                    }
                }
                BatchOp::Rdgs => {
                    let got: Vec<u16> = batch.rdgs_all().to_vec();
                    for (m, &g) in scalar.iter_mut().zip(&got) {
                        prop_assert_eq!(m.rdgs().bits(), g);
                    }
                }
                BatchOp::RunUntil(delta) => {
                    // The batch runs to a shared absolute deadline; each
                    // scalar machine span-loops to the same instant.
                    let deadline = batch
                        .nows()
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(Ps::ZERO)
                        + delta;
                    batch.run_all_until(deadline);
                    for m in &mut scalar {
                        while m.now() < deadline {
                            let _ = m.run_user_until(deadline);
                        }
                    }
                }
            }
        }
        for (i, m) in scalar.iter_mut().enumerate() {
            prop_assert_eq!(m.now(), batch.nows()[i], "lane {} clock", i);
            prop_assert_eq!(
                m.ground_truth().records(),
                batch.lane(i).ground_truth().records(),
                "lane {} deliveries",
                i
            );
            prop_assert_eq!(m.fault_log(), batch.lane(i).fault_log(), "lane {} faults", i);
            prop_assert_eq!(
                m.rng_mut().gen::<u64>(),
                batch.with_lane_mut(i, |lane| lane.rng_mut().gen::<u64>()),
                "lane {} RNG position",
                i
            );
        }
    }

    /// Lane recycling mid-sequence: resetting a lane and replaying ops is
    /// identical to a fresh machine replaying the same ops.
    #[test]
    fn recycled_lane_matches_fresh_machine(
        codes in prop::collection::vec(0u8..6, 1..20),
        dirty_ms in 1u64..40,
        seed in 0u64..10_000,
    ) {
        let ops = decode_ops(&codes, seed);
        let config = MachineConfig::table1()[seed as usize % 6].clone();
        let mut batch = MachineBatch::new_uniform(&config, &[seed, seed ^ 0xFF]);
        batch.run_all_until(Ps::from_ms(dirty_ms));
        batch.reset_lane(0, config.clone(), seed.wrapping_add(1));
        let mut fresh = Machine::new(config, seed.wrapping_add(1));
        for op in &ops {
            match *op {
                BatchOp::Wrgs(bits) => {
                    let a = batch.with_lane_mut(0, |l| l.wrgs(Selector::from_bits(bits)));
                    let b = fresh.wrgs(Selector::from_bits(bits));
                    prop_assert_eq!(a, b);
                }
                BatchOp::Spin(cycles) => {
                    batch.with_lane_mut(0, |l| l.spin(cycles));
                    fresh.spin(cycles);
                }
                BatchOp::Rdgs => {
                    let a = batch.with_lane_mut(0, |l| l.rdgs());
                    prop_assert_eq!(a, fresh.rdgs());
                }
                BatchOp::RunUntil(delta) => {
                    let a = batch.with_lane_mut(0, |l| {
                        let deadline = l.now() + delta;
                        l.run_user_until(deadline)
                    });
                    let b = fresh.run_user_until(fresh.now() + delta);
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(batch.nows()[0], fresh.now());
        prop_assert_eq!(
            batch.with_lane_mut(0, |l| l.rng_mut().gen::<u64>()),
            fresh.rng_mut().gen::<u64>()
        );
    }
}
