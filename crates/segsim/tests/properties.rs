//! Property-based tests for the machine simulator.

use irq::time::Ps;
use proptest::prelude::*;
use segsim::{Machine, MachineConfig, SpanEnd};
use x86seg::{DataSegReg, Selector};

fn table1_machine(idx: usize, seed: u64) -> Machine {
    let configs = MachineConfig::table1();
    Machine::new(configs[idx % configs.len()].clone(), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Simulated time is strictly monotone under any op sequence.
    #[test]
    fn time_is_monotone(ops in prop::collection::vec(0u8..6, 1..60), seed in 0u64..100_000) {
        let mut machine = table1_machine(seed as usize, seed);
        let mut last = machine.now();
        for op in ops {
            match op {
                0 => machine.spin(1_000),
                1 => { let _ = machine.rdtsc(); }
                2 => { let _ = machine.rdgs(); }
                3 => { let _ = machine.wrgs(Selector::from_bits(1)); }
                4 => { let _ = machine.mem_access(0x1000); }
                _ => { let _ = machine.run_user_until(machine.now() + Ps::from_us(50)); }
            }
            let now = machine.now();
            prop_assert!(now > last, "time did not advance");
            last = now;
        }
    }

    /// rdtsc is monotone nondecreasing and advances across spins.
    #[test]
    fn tsc_is_monotone(spins in prop::collection::vec(1u64..1_000_000, 1..20)) {
        let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), 0x7);
        let mut last = machine.rdtsc().expect("rdtsc");
        for s in spins {
            machine.spin(s);
            let now = machine.rdtsc().expect("rdtsc");
            prop_assert!(now > last);
            last = now;
        }
    }

    /// A span's user cycles never exceed what the max frequency could
    /// physically execute in that span.
    #[test]
    fn span_cycles_are_physical(seed in 0u64..100_000, idx in 0usize..6) {
        let mut machine = table1_machine(idx, seed);
        let max_khz = machine.config().freq.max_khz;
        for _ in 0..5 {
            let span = machine.run_user_until(machine.now() + Ps::from_ms(2));
            let wall = span.end - span.start;
            let bound = wall.cycles_at(max_khz) as f64 * 1.01 + 2.0;
            prop_assert!(span.cycles <= bound, "cycles {} > bound {bound}", span.cycles);
        }
    }

    /// After any interrupt-terminated span, no data-segment register
    /// holds a non-zero null selector (the Algorithm 1 guarantee), on
    /// any machine without the preserve mitigation.
    #[test]
    fn no_marker_survives_interrupts(seed in 0u64..100_000, marker in 1u16..4) {
        let mut machine = Machine::new(MachineConfig::honor_magicbook(), seed);
        machine.wrgs(Selector::from_bits(marker)).expect("marker");
        let span = machine.run_user_until(Ps::MAX);
        prop_assert!(matches!(span.ended_by, SpanEnd::Interrupt(_)));
        for reg in DataSegReg::ALL {
            prop_assert!(!machine.rdseg(reg).is_nonzero_null());
        }
    }

    /// Frequency always stays within the machine's configured envelope.
    #[test]
    fn frequency_stays_in_envelope(seed in 0u64..100_000, idx in 0usize..6) {
        let mut machine = table1_machine(idx, seed);
        let (min, max) = (machine.config().freq.min_khz, machine.config().freq.max_khz);
        for _ in 0..50 {
            machine.spin(2_000_000);
            let f = machine.current_freq_khz();
            prop_assert!((min..=max).contains(&f), "freq {f} outside [{min}, {max}]");
        }
    }

    /// Ground truth and kernel-entry accounting agree: every recorded
    /// interrupt entered the kernel.
    #[test]
    fn ground_truth_matches_kernel_entries(seed in 0u64..100_000) {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), seed);
        machine.ground_truth_mut().clear();
        let entries_before = machine.kernel_entries();
        for _ in 0..20 {
            let _ = machine.run_user_until(Ps::MAX);
        }
        let delivered = machine.ground_truth().len() as u64;
        let entries = machine.kernel_entries() - entries_before;
        prop_assert_eq!(delivered, entries);
    }

    /// The coarse clock is quantized and monotone for any resolution.
    #[test]
    fn coarse_clock_quantized(res_us in 1u64..10_000, seed in 0u64..100_000) {
        let mut machine = Machine::new(MachineConfig::amazon_c5_large(), seed);
        let res = Ps::from_us(res_us);
        let mut last = 0u64;
        for _ in 0..10 {
            machine.spin(500_000);
            let ns = machine.clock_read(res).expect("clock");
            prop_assert_eq!(ns % (res.as_ps() / 1_000).max(1), 0);
            prop_assert!(ns >= last);
            last = ns;
        }
    }
}
