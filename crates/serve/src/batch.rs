//! The cross-session batcher: SoA lockstep lanes with recycling,
//! mirroring `segsim::MachineBatch`.

use crate::model::{advance_cells, StepModel};
use crate::session::Verdict;

/// A generation-checked handle to one attached session.
///
/// Lanes are recycled as sessions finish; the generation counter makes
/// a handle to a finished session unusable instead of silently aliasing
/// the lane's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    lane: usize,
    generation: u64,
}

impl SessionId {
    /// The lane index this handle occupies (stable for the session's
    /// lifetime; reused afterwards).
    #[must_use]
    pub fn lane(&self) -> usize {
        self.lane
    }
}

/// A lockstep batch of streaming sessions over one model.
///
/// Per-session hidden/cell state lives in feature-major SoA buffers
/// (`buf[feature * capacity + lane]`, the `segsim::MachineBatch`
/// layout). Each [`SessionBatch::step`] packs the staged lanes into a
/// dense block and drives **one** blocked kernel call per gate matrix
/// for the whole batch instead of one matvec per session; lanes recycle
/// through a free list as sessions finish and new ones attach.
///
/// **Parity:** the packed kernel's per-lane floating-point order is
/// width-independent (see [`nnet::Mat::matvec_bias_acc_soa`]), so a
/// lane's verdict is bit-identical to serving that session alone
/// through [`crate::StreamSession`] — and therefore to the batch
/// [`nnet::SeqClassifier`] — at any batch size and any attach/finish
/// interleaving.
#[derive(Debug, Clone)]
pub struct SessionBatch {
    input: usize,
    hidden: usize,
    capacity: usize,
    /// Feature-major `hidden × capacity` hidden state.
    h: Vec<f32>,
    /// Feature-major `hidden × capacity` cell state.
    c: Vec<f32>,
    /// Feature-major `input × capacity` staged inputs for this step.
    x: Vec<f32>,
    expected: Vec<usize>,
    seen: Vec<usize>,
    staged: Vec<bool>,
    live: Vec<bool>,
    generation: Vec<u64>,
    /// Vacant lanes, popped on attach (lowest lane first).
    free: Vec<usize>,
    // Step scratch, allocated once.
    concat: Vec<f32>,
    pre: Vec<f32>,
    cpack: Vec<f32>,
    hpack: Vec<f32>,
    active: Vec<usize>,
    logits: Vec<f32>,
    hlane: Vec<f32>,
}

impl SessionBatch {
    /// A batch of `capacity` lanes shaped for `model`.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new<M: StepModel>(model: &M, capacity: usize) -> Self {
        assert!(capacity > 0, "a session batch needs at least one lane");
        let (input, hidden) = (model.input_dim(), model.hidden_dim());
        SessionBatch {
            input,
            hidden,
            capacity,
            h: vec![0.0; hidden * capacity],
            c: vec![0.0; hidden * capacity],
            x: vec![0.0; input * capacity],
            expected: vec![0; capacity],
            seen: vec![0; capacity],
            staged: vec![false; capacity],
            live: vec![false; capacity],
            generation: vec![0; capacity],
            free: (0..capacity).rev().collect(),
            concat: vec![0.0; (input + hidden) * capacity],
            pre: vec![0.0; 4 * hidden * capacity],
            cpack: vec![0.0; hidden * capacity],
            hpack: vec![0.0; hidden * capacity],
            active: Vec::with_capacity(capacity),
            logits: vec![0.0; model.classes()],
            hlane: vec![0.0; hidden],
        }
    }

    /// Lane count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of attached (unfinished) sessions.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// Whether every lane is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Attaches a new session expecting `expected_steps` timesteps,
    /// recycling a vacant lane; `None` when the batch is full.
    ///
    /// # Panics
    ///
    /// Panics when `expected_steps` is zero.
    pub fn attach(&mut self, expected_steps: usize) -> Option<SessionId> {
        assert!(expected_steps > 0, "cannot classify an empty sequence");
        let lane = self.free.pop()?;
        for f in 0..self.hidden {
            self.h[f * self.capacity + lane] = 0.0;
            self.c[f * self.capacity + lane] = 0.0;
        }
        self.expected[lane] = expected_steps;
        self.seen[lane] = 0;
        self.staged[lane] = false;
        self.live[lane] = true;
        self.generation[lane] += 1;
        Some(SessionId {
            lane,
            generation: self.generation[lane],
        })
    }

    /// Detaches a session before its verdict, freeing the lane.
    ///
    /// # Panics
    ///
    /// Panics on a stale or foreign handle.
    pub fn detach(&mut self, id: SessionId) {
        self.check(id);
        self.release(id.lane);
    }

    /// Stages `x` as session `id`'s next timestep; the step happens at
    /// the next [`SessionBatch::step`].
    ///
    /// # Panics
    ///
    /// Panics on a stale handle, a dimension mismatch, or when the
    /// session already has a staged timestep.
    pub fn stage(&mut self, id: SessionId, x: &[f32]) {
        self.check(id);
        assert_eq!(x.len(), self.input, "session input dimension");
        assert!(!self.staged[id.lane], "timestep already staged this step");
        for (f, &v) in x.iter().enumerate() {
            self.x[f * self.capacity + id.lane] = v;
        }
        self.staged[id.lane] = true;
    }

    /// Advances every staged session one timestep in lockstep and
    /// returns the verdicts of the sessions that just consumed their
    /// final timestep, in lane order. Finished lanes are released for
    /// recycling before returning.
    ///
    /// `model` must be the model the batch was built for.
    pub fn step<M: StepModel>(&mut self, model: &M) -> Vec<(SessionId, Verdict)> {
        debug_assert_eq!(model.input_dim(), self.input, "model shape changed");
        debug_assert_eq!(model.hidden_dim(), self.hidden, "model shape changed");
        self.active.clear();
        for lane in 0..self.capacity {
            if self.staged[lane] {
                self.active.push(lane);
            }
        }
        let m = self.active.len();
        if m == 0 {
            return Vec::new();
        }
        // Gather the staged lanes into dense feature-major blocks.
        for f in 0..self.input {
            for (k, &lane) in self.active.iter().enumerate() {
                self.concat[f * m + k] = self.x[f * self.capacity + lane];
            }
        }
        for f in 0..self.hidden {
            for (k, &lane) in self.active.iter().enumerate() {
                self.concat[(self.input + f) * m + k] = self.h[f * self.capacity + lane];
                self.cpack[f * m + k] = self.c[f * self.capacity + lane];
            }
        }
        // One blocked kernel call for the whole batch, then the fused
        // gate pass over all lanes.
        model.gate_pre_soa(
            &self.concat[..(self.input + self.hidden) * m],
            m,
            &mut self.pre[..4 * self.hidden * m],
        );
        advance_cells(
            &self.pre[..4 * self.hidden * m],
            self.hidden,
            m,
            &mut self.cpack[..self.hidden * m],
            &mut self.hpack[..self.hidden * m],
        );
        // Scatter the new state back to the lanes.
        for f in 0..self.hidden {
            for (k, &lane) in self.active.iter().enumerate() {
                self.h[f * self.capacity + lane] = self.hpack[f * m + k];
                self.c[f * self.capacity + lane] = self.cpack[f * m + k];
            }
        }
        let mut verdicts = Vec::new();
        for k in 0..m {
            let lane = self.active[k];
            self.staged[lane] = false;
            self.seen[lane] += 1;
            if self.seen[lane] < self.expected[lane] {
                continue;
            }
            for f in 0..self.hidden {
                self.hlane[f] = self.hpack[f * m + k];
            }
            model.head_logits(&self.hlane, &mut self.logits);
            let id = SessionId {
                lane,
                generation: self.generation[lane],
            };
            verdicts.push((
                id,
                Verdict {
                    class: nnet::argmax(&self.logits),
                    steps: self.seen[lane],
                },
            ));
            self.release(lane);
        }
        verdicts
    }

    fn check(&self, id: SessionId) {
        assert!(
            id.lane < self.capacity
                && self.live[id.lane]
                && self.generation[id.lane] == id.generation,
            "stale or foreign session handle"
        );
    }

    fn release(&mut self, lane: usize) {
        self.live[lane] = false;
        self.staged[lane] = false;
        self.free.push(lane);
    }
}
