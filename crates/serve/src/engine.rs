//! Trace-level serving drivers: feed whole traces through the batcher
//! (or a single recycled session) and collect verdicts in trace order.

use crate::batch::SessionBatch;
use crate::model::StepModel;
use crate::session::{StreamSession, Verdict};

/// Serves every trace through a [`SessionBatch`] of `capacity` lanes:
/// up to `capacity` sessions run in lockstep, lanes recycle onto the
/// next waiting trace as sessions finish, and each live session
/// receives one timestep per step. Returns one verdict per trace, in
/// trace order.
///
/// Bit-identical to [`serve_sequential`] at any `capacity` (the batch
/// parity contract), which the parity tests pin at capacities
/// {1, 4, 17, 64}.
///
/// # Panics
///
/// Panics when `capacity` is zero or any trace is empty or has the
/// wrong feature dimensionality.
#[must_use]
pub fn serve_batched<M: StepModel>(
    model: &M,
    traces: &[Vec<Vec<f32>>],
    capacity: usize,
) -> Vec<Verdict> {
    let mut batch = SessionBatch::new(model, capacity);
    let mut verdicts: Vec<Option<Verdict>> = vec![None; traces.len()];
    // Per-lane bookkeeping: which trace a lane serves and the next
    // timestep to stage.
    let mut owner = vec![usize::MAX; capacity];
    let mut cursor = vec![0usize; capacity];
    let mut ids = Vec::with_capacity(capacity);
    ids.resize_with(capacity, || None);
    let mut next = 0usize;
    loop {
        while next < traces.len() {
            let Some(id) = batch.attach(traces[next].len()) else {
                break;
            };
            owner[id.lane()] = next;
            cursor[id.lane()] = 0;
            ids[id.lane()] = Some(id);
            next += 1;
        }
        if batch.active_sessions() == 0 {
            break;
        }
        for lane in 0..capacity {
            let Some(id) = ids[lane] else { continue };
            batch.stage(id, &traces[owner[lane]][cursor[lane]]);
            cursor[lane] += 1;
        }
        for (id, verdict) in batch.step(model) {
            verdicts[owner[id.lane()]] = Some(verdict);
            ids[id.lane()] = None;
            owner[id.lane()] = usize::MAX;
        }
    }
    verdicts
        .into_iter()
        .map(|v| v.expect("every trace produces a verdict"))
        .collect()
}

/// Serves every trace through one recycled [`StreamSession`], one trace
/// at a time — the unbatched baseline the throughput gate compares
/// [`serve_batched`] against.
///
/// # Panics
///
/// Panics when any trace is empty or has the wrong feature
/// dimensionality.
#[must_use]
pub fn serve_sequential<M: StepModel>(model: &M, traces: &[Vec<Vec<f32>>]) -> Vec<Verdict> {
    let mut verdicts = Vec::with_capacity(traces.len());
    let mut session: Option<StreamSession> = None;
    for trace in traces {
        let sess = match session.as_mut() {
            Some(sess) => {
                sess.reset(trace.len());
                sess
            }
            None => session.insert(StreamSession::new(model, trace.len())),
        };
        let mut verdict = None;
        for x in trace {
            verdict = sess.push(model, x);
        }
        verdicts.push(verdict.expect("final timestep yields the verdict"));
    }
    verdicts
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a verdict sequence (class then step count of each
/// verdict, little-endian) — the order-sensitive identity the bench
/// gate and the CI smoke compare serving paths with.
#[must_use]
pub fn verdict_fnv(verdicts: &[Verdict]) -> u64 {
    let mut hash = FNV_BASIS;
    let mut fold = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for v in verdicts {
        fold(v.class as u64);
        fold(v.steps as u64);
    }
    hash
}
