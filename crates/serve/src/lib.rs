//! `serve` — the streaming inference engine for the SegScope
//! classifiers: interrupt-trace timesteps arrive incrementally across
//! many concurrent sessions and advance in lockstep through the
//! [`nnet`] LSTM.
//!
//! Three layers, each bit-identical to the one below:
//!
//! * [`StreamSession`] — one session's hidden/cell state with an
//!   incremental [`StreamSession::push`]`(timestep) -> Option<Verdict>`
//!   API, exactly matching [`nnet::SeqClassifier::predict`] on the same
//!   trace (the parity oracle test pins this bit-for-bit);
//! * [`SessionBatch`] — the cross-session batcher: SoA state lanes
//!   (mirroring `segsim::MachineBatch`), one blocked kernel call per
//!   gate matrix per step for the whole batch, lane recycling as
//!   sessions finish and new ones attach;
//! * [`QuantizedSeqClassifier`] — post-training i8/i16 weight
//!   quantization with per-row scales and a dequant-free integer inner
//!   loop, gated to within 1% of the `f32` model's accuracy.
//!
//! The trace-level drivers [`serve_batched`]/[`serve_sequential`] and
//! the [`verdict_fnv`] identity back the `bench_serve` throughput gate
//! and the CI smoke.
//!
//! # Example
//!
//! ```
//! use nnet::{AdamConfig, SeqClassifier};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let model = SeqClassifier::new(2, 8, 3, &mut rng, AdamConfig::default());
//! let trace = vec![vec![0.3, -0.1], vec![0.9, 0.2], vec![0.0, 0.4]];
//!
//! // Incremental serving, verdict on the final timestep…
//! let mut session = serve::StreamSession::new(&model, trace.len());
//! let mut verdict = None;
//! for x in &trace {
//!     verdict = session.push(&model, x);
//! }
//! // …bit-identical to the batch classifier.
//! assert_eq!(verdict.unwrap().class, model.predict(&trace));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod engine;
mod model;
mod quant;
mod session;

pub use batch::{SessionBatch, SessionId};
pub use engine::{serve_batched, serve_sequential, verdict_fnv};
pub use model::StepModel;
pub use quant::{QuantScheme, QuantizedSeqClassifier};
pub use session::{StreamSession, Verdict};
