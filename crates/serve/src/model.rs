//! The model face the streaming engine serves, and the shared gate
//! arithmetic whose operation order the bit-parity guarantee rests on.

use nnet::SeqClassifier;

/// A many-to-one recurrent classifier the streaming engine can drive.
///
/// The engine owns the per-session hidden/cell state and the lockstep
/// batching; the model provides exactly two computations per step:
///
/// 1. [`StepModel::gate_pre_soa`] — the stacked gate pre-activations
///    for a block of lanes, and
/// 2. [`StepModel::head_logits`] — the dense head over one finished
///    session's hidden state.
///
/// **Parity contract:** for any lane `l`, the lane's slice of the
/// `gate_pre_soa` output must be bit-identical to what the model's
/// batch forward pass computes for that lane's input alone, regardless
/// of `lanes`. [`SeqClassifier`] satisfies this via
/// [`nnet::Mat::matvec_bias_acc_soa`] (width-independent per-lane
/// floating-point order); the quantized model satisfies it trivially
/// because integer accumulation is exact.
pub trait StepModel {
    /// Per-timestep feature dimensionality.
    fn input_dim(&self) -> usize;

    /// Hidden dimensionality.
    fn hidden_dim(&self) -> usize;

    /// Output class count.
    fn classes(&self) -> usize;

    /// Writes the stacked gate pre-activations for `lanes` lockstep
    /// sessions: `concat` holds `[x, h_prev]` feature-major
    /// (`concat[f * lanes + l]`, `(input + hidden) × lanes` long), and
    /// `pre` receives the `[i, f, g, o]` rows row-major
    /// (`pre[row * lanes + l]`, `4·hidden × lanes` long).
    fn gate_pre_soa(&self, concat: &[f32], lanes: usize, pre: &mut [f32]);

    /// Writes the class logits for one hidden state into `out`
    /// (`out.len() == classes`).
    fn head_logits(&self, hidden: &[f32], out: &mut [f32]);
}

impl StepModel for SeqClassifier {
    fn input_dim(&self) -> usize {
        self.lstm().input_dim()
    }

    fn hidden_dim(&self) -> usize {
        self.lstm().hidden_dim()
    }

    fn classes(&self) -> usize {
        SeqClassifier::classes(self)
    }

    fn gate_pre_soa(&self, concat: &[f32], lanes: usize, pre: &mut [f32]) {
        pre.fill(0.0);
        self.lstm()
            .weights()
            .matvec_bias_acc_soa(concat, lanes, pre);
    }

    fn head_logits(&self, hidden: &[f32], out: &mut [f32]) {
        self.head().forward_into(hidden, out);
    }
}

/// Same expression as the private sigmoid in `nnet::lstm` — the exact
/// operation sequence matters for bit parity with the batch classifier.
#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Advances `lanes` lockstep sessions one LSTM timestep from the gate
/// pre-activations: `pre` is row-major `4·hidden × lanes` in `[i, f, g,
/// o]` order, `c` and `h_out` are feature-major `hidden × lanes` (`c`
/// holds the previous cell state on entry and the new one on exit).
///
/// The per-lane operation sequence — sigmoid/tanh per gate, `f·c + i·g`
/// into the cell, `o·tanh(c)` into the hidden state — is copied verbatim
/// from the fused loop in `nnet::Lstm::forward`, so each lane's new
/// state is bit-identical to a scalar forward step on that lane alone.
pub(crate) fn advance_cells(
    pre: &[f32],
    hidden: usize,
    lanes: usize,
    c: &mut [f32],
    h_out: &mut [f32],
) {
    debug_assert_eq!(pre.len(), 4 * hidden * lanes);
    debug_assert_eq!(c.len(), hidden * lanes);
    debug_assert_eq!(h_out.len(), hidden * lanes);
    for j in 0..hidden {
        let i_row = &pre[j * lanes..(j + 1) * lanes];
        let f_row = &pre[(hidden + j) * lanes..(hidden + j + 1) * lanes];
        let g_row = &pre[(2 * hidden + j) * lanes..(2 * hidden + j + 1) * lanes];
        let o_row = &pre[(3 * hidden + j) * lanes..(3 * hidden + j + 1) * lanes];
        let c_row = &mut c[j * lanes..(j + 1) * lanes];
        let h_row = &mut h_out[j * lanes..(j + 1) * lanes];
        let gates = i_row.iter().zip(f_row).zip(g_row).zip(o_row);
        for ((((&pi, &pf), &pg), &po), (cl, hl)) in
            gates.zip(c_row.iter_mut().zip(h_row.iter_mut()))
        {
            let i_g = sigmoid(pi);
            let f_g = sigmoid(pf);
            let g_g = pg.tanh();
            let o_g = sigmoid(po);
            let cv = f_g * *cl + i_g * g_g;
            *cl = cv;
            *hl = o_g * cv.tanh();
        }
    }
}
