//! Post-training weight quantization: per-row scales, integer inner
//! loops, deterministic by construction.

use crate::model::StepModel;
use crate::session::{StreamSession, Verdict};
use nnet::{Mat, SeqClassifier, SeqExample};
use serde::{Deserialize, Serialize};

/// Weight quantization width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantScheme {
    /// 8-bit weights (values clamped to ±127).
    I8,
    /// 16-bit weights (values clamped to ±32767).
    I16,
}

impl QuantScheme {
    /// Largest representable magnitude.
    #[must_use]
    pub fn qmax(self) -> i32 {
        match self {
            QuantScheme::I8 => 127,
            QuantScheme::I16 => 32767,
        }
    }

    /// Scheme name for reports (`"i8"` / `"i16"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QuantScheme::I8 => "i8",
            QuantScheme::I16 => "i16",
        }
    }
}

/// A weight matrix quantized symmetrically per row: `w[r, f] ≈ q[r, f] ·
/// row_scale[r]` with the folded-in bias column kept in `f32` (biases
/// are few and additive error there is pure loss).
///
/// Storage is `i16` for both schemes; the i8 scheme simply clamps to
/// ±127, so one integer kernel serves both.
#[derive(Debug, Clone, PartialEq)]
struct QuantizedMat {
    rows: usize,
    feat: usize,
    q: Vec<i16>,
    row_scale: Vec<f32>,
    bias: Vec<f32>,
}

impl QuantizedMat {
    /// Quantizes a bias-folded matrix (`feat = cols - 1` weight columns
    /// plus the bias column).
    fn quantize(m: &Mat, qmax: i32) -> Self {
        assert!(m.cols() > 0, "quantization needs a bias column");
        let (rows, feat) = (m.rows(), m.cols() - 1);
        let mut q = Vec::with_capacity(rows * feat);
        let mut row_scale = Vec::with_capacity(rows);
        let mut bias = Vec::with_capacity(rows);
        for r in 0..rows {
            let (w, b) = m.row(r).split_at(feat);
            let max_abs = w.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
            let scale = if max_abs == 0.0 {
                0.0
            } else {
                max_abs / qmax as f32
            };
            for &v in w {
                let qv = if scale == 0.0 {
                    0
                } else {
                    (v / scale).round().clamp(-(qmax as f32), qmax as f32) as i16
                };
                q.push(qv);
            }
            row_scale.push(scale);
            bias.push(b[0]);
        }
        QuantizedMat {
            rows,
            feat,
            q,
            row_scale,
            bias,
        }
    }

    /// `out[r * lanes + l] = (Σ_f q[r, f] · xq[f * lanes + l]) ·
    /// row_scale[r] · x_scale[l] + bias[r]` — the dequant-free integer
    /// inner loop. Integer accumulation is exact, so each lane's result
    /// is independent of `lanes` by construction.
    fn matvec_soa(&self, xq: &[i32], x_scale: &[f32], lanes: usize, out: &mut [f32]) {
        debug_assert_eq!(xq.len(), self.feat * lanes);
        debug_assert_eq!(x_scale.len(), lanes);
        debug_assert_eq!(out.len(), self.rows * lanes);
        for (r, (out_row, &rs)) in out.chunks_exact_mut(lanes).zip(&self.row_scale).enumerate() {
            let qrow = &self.q[r * self.feat..(r + 1) * self.feat];
            let brow = self.bias[r];
            for (l, (o, &xs)) in out_row.iter_mut().zip(x_scale).enumerate() {
                let mut acc = 0i64;
                for (f, &qv) in qrow.iter().enumerate() {
                    acc += i64::from(qv) * i64::from(xq[f * lanes + l]);
                }
                *o = (acc as f32) * rs * xs + brow;
            }
        }
    }
}

/// A post-training quantized [`SeqClassifier`]: i8/i16 weights with
/// per-row scales, per-step symmetric input quantization with a
/// per-lane scale, and `f32` gate nonlinearities.
///
/// Implements [`StepModel`], so it plugs into the same
/// [`StreamSession`]/[`crate::SessionBatch`] machinery as the `f64`
/// model; batched and sequential serving are bit-identical because the
/// integer accumulation is exact (order-free).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSeqClassifier {
    input: usize,
    hidden: usize,
    classes: usize,
    scheme: QuantScheme,
    lstm_w: QuantizedMat,
    head_w: QuantizedMat,
}

impl QuantizedSeqClassifier {
    /// Quantizes a trained classifier's weights.
    #[must_use]
    pub fn quantize(model: &SeqClassifier, scheme: QuantScheme) -> Self {
        let qmax = scheme.qmax();
        QuantizedSeqClassifier {
            input: model.lstm().input_dim(),
            hidden: model.lstm().hidden_dim(),
            classes: model.classes(),
            scheme,
            lstm_w: QuantizedMat::quantize(model.lstm().weights(), qmax),
            head_w: QuantizedMat::quantize(model.head().weights(), qmax),
        }
    }

    /// The quantization scheme.
    #[must_use]
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Predicted class for one full trace (streams it through a
    /// [`StreamSession`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence.
    #[must_use]
    pub fn predict(&self, xs: &[Vec<f32>]) -> usize {
        assert!(!xs.is_empty(), "cannot classify an empty sequence");
        let mut session = StreamSession::new(self, xs.len());
        let mut verdict: Option<Verdict> = None;
        for x in xs {
            verdict = session.push(self, x);
        }
        verdict.expect("final timestep yields the verdict").class
    }

    /// Top-1 accuracy over a labeled set (the accuracy-delta gate
    /// compares this against [`SeqClassifier::accuracy`]).
    #[must_use]
    pub fn accuracy(&self, examples: &[SeqExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let hits = examples
            .iter()
            .filter(|ex| self.predict(&ex.xs) == ex.label)
            .count();
        hits as f64 / examples.len() as f64
    }

    /// Symmetrically quantizes each lane column of a feature-major
    /// input block: `xq = round(x / x_scale[l])` with `x_scale[l] =
    /// max_abs(lane l) / qmax`.
    fn quantize_input_soa(&self, x: &[f32], feat: usize, lanes: usize) -> (Vec<i32>, Vec<f32>) {
        let qmax = self.scheme.qmax();
        let mut x_scale = vec![0.0f32; lanes];
        for (l, scale) in x_scale.iter_mut().enumerate() {
            let mut max_abs = 0.0f32;
            for f in 0..feat {
                max_abs = max_abs.max(x[f * lanes + l].abs());
            }
            *scale = if max_abs == 0.0 {
                0.0
            } else {
                max_abs / qmax as f32
            };
        }
        let mut xq = vec![0i32; feat * lanes];
        for (i, (qv, &v)) in xq.iter_mut().zip(x).enumerate() {
            let scale = x_scale[i % lanes];
            if scale != 0.0 {
                *qv = (v / scale).round().clamp(-(qmax as f32), qmax as f32) as i32;
            }
        }
        (xq, x_scale)
    }
}

impl StepModel for QuantizedSeqClassifier {
    fn input_dim(&self) -> usize {
        self.input
    }

    fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn classes(&self) -> usize {
        self.classes
    }

    fn gate_pre_soa(&self, concat: &[f32], lanes: usize, pre: &mut [f32]) {
        let feat = self.input + self.hidden;
        let (xq, x_scale) = self.quantize_input_soa(concat, feat, lanes);
        self.lstm_w.matvec_soa(&xq, &x_scale, lanes, pre);
    }

    fn head_logits(&self, hidden: &[f32], out: &mut [f32]) {
        let (xq, x_scale) = self.quantize_input_soa(hidden, self.hidden, 1);
        self.head_w.matvec_soa(&xq, &x_scale, 1, out);
    }
}
