//! A single streaming session: incremental timesteps in, one verdict
//! out, bit-identical to the batch classifier on the same trace.

use crate::model::{advance_cells, StepModel};
use serde::{Deserialize, Serialize};

/// The engine's classification result for one finished session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Predicted class (the argmax of the head logits, with
    /// [`nnet::argmax`] tie-breaking — last maximal logit wins).
    pub class: usize,
    /// Timesteps consumed to produce the verdict.
    pub steps: usize,
}

/// One streaming inference session: holds the per-session hidden/cell
/// state and consumes timesteps incrementally via
/// [`StreamSession::push`], returning the [`Verdict`] once the declared
/// trace length has been consumed.
///
/// The verdict is **bit-identical** to
/// [`nnet::SeqClassifier::predict`] on the accumulated trace: each push
/// replicates one iteration of the batch forward loop (same
/// concatenation, same kernel per-lane order, same fused gate
/// arithmetic), and the head + argmax run on the same final hidden
/// state. The parity oracle test in `tests/parity.rs` pins this, the
/// same pattern as `NaiveFabric` and `nnet::reference`.
#[derive(Debug, Clone)]
pub struct StreamSession {
    input: usize,
    hidden: usize,
    expected: usize,
    seen: usize,
    h: Vec<f32>,
    c: Vec<f32>,
    concat: Vec<f32>,
    pre: Vec<f32>,
    logits: Vec<f32>,
}

impl StreamSession {
    /// Opens a session against `model` for a trace of `expected_steps`
    /// timesteps.
    ///
    /// # Panics
    ///
    /// Panics when `expected_steps` is zero (an empty sequence cannot be
    /// classified — same contract as [`nnet::SeqClassifier::logits`]).
    #[must_use]
    pub fn new<M: StepModel>(model: &M, expected_steps: usize) -> Self {
        assert!(expected_steps > 0, "cannot classify an empty sequence");
        let (input, hidden) = (model.input_dim(), model.hidden_dim());
        StreamSession {
            input,
            hidden,
            expected: expected_steps,
            seen: 0,
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
            concat: vec![0.0; input + hidden],
            pre: vec![0.0; 4 * hidden],
            logits: vec![0.0; model.classes()],
        }
    }

    /// Timesteps consumed so far.
    #[must_use]
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Declared trace length.
    #[must_use]
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Whether the session has produced its verdict.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.seen == self.expected
    }

    /// Feeds one timestep; returns the verdict on the final one.
    ///
    /// `model` must be the model the session was opened against.
    ///
    /// # Panics
    ///
    /// Panics on an input-dimension mismatch or when pushing into a
    /// session that already produced its verdict.
    pub fn push<M: StepModel>(&mut self, model: &M, x: &[f32]) -> Option<Verdict> {
        assert_eq!(x.len(), self.input, "session input dimension");
        assert!(!self.finished(), "session already produced its verdict");
        self.concat[..self.input].copy_from_slice(x);
        self.concat[self.input..].copy_from_slice(&self.h);
        model.gate_pre_soa(&self.concat, 1, &mut self.pre);
        advance_cells(&self.pre, self.hidden, 1, &mut self.c, &mut self.h);
        self.seen += 1;
        if self.seen < self.expected {
            return None;
        }
        model.head_logits(&self.h, &mut self.logits);
        Some(Verdict {
            class: nnet::argmax(&self.logits),
            steps: self.seen,
        })
    }

    /// Rewinds the session to serve a fresh trace of `expected_steps`
    /// timesteps, reusing every buffer.
    ///
    /// # Panics
    ///
    /// Panics when `expected_steps` is zero.
    pub fn reset(&mut self, expected_steps: usize) {
        assert!(expected_steps > 0, "cannot classify an empty sequence");
        self.h.fill(0.0);
        self.c.fill(0.0);
        self.seen = 0;
        self.expected = expected_steps;
    }
}
