//! The streaming engine's bit-parity oracle tests: incremental ≡ batch
//! classifier, and batched lockstep ≡ sequential at every batch size —
//! the same oracle pattern as `NaiveFabric` and `nnet::reference`.

use nnet::{AdamConfig, SeqClassifier, SeqExample};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serve::{
    serve_batched, serve_sequential, verdict_fnv, QuantScheme, QuantizedSeqClassifier,
    SessionBatch, StreamSession,
};

/// A deterministic lightly-trained model (training makes the logits
/// non-degenerate, so argmax parity is meaningful).
fn trained_model(rng: &mut SmallRng) -> SeqClassifier {
    let mut model = SeqClassifier::new(2, 12, 4, rng, AdamConfig::default());
    let examples: Vec<SeqExample> = (0..24)
        .map(|i| {
            let label = i % 4;
            let xs = (0..10)
                .map(|t| {
                    vec![
                        label as f32 / 4.0 + ((i * 10 + t) as f32 * 0.31).sin() * 0.05,
                        ((t + label) as f32 * 0.17).cos() * 0.3,
                    ]
                })
                .collect();
            SeqExample { xs, label }
        })
        .collect();
    for _ in 0..4 {
        model.train_epoch(&examples, 8);
    }
    model
}

/// Deterministic traces of varied lengths (so batched lanes finish and
/// recycle at different steps).
fn traces(rng: &mut SmallRng, count: usize) -> Vec<Vec<Vec<f32>>> {
    (0..count)
        .map(|i| {
            let len = 5 + (i * 7) % 23;
            (0..len)
                .map(|_| vec![rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)])
                .collect()
        })
        .collect()
}

#[test]
fn stream_session_matches_batch_classifier_bit_for_bit() {
    let mut rng = SmallRng::seed_from_u64(0x5E21);
    let model = trained_model(&mut rng);
    for trace in traces(&mut rng, 40) {
        let mut session = StreamSession::new(&model, trace.len());
        let mut verdict = None;
        for x in &trace {
            verdict = session.push(&model, x);
        }
        let verdict = verdict.expect("verdict on final step");
        assert_eq!(verdict.class, model.predict(&trace));
        assert_eq!(verdict.steps, trace.len());
        assert!(session.finished());
    }
}

#[test]
fn batched_lockstep_matches_sequential_at_every_batch_size() {
    let mut rng = SmallRng::seed_from_u64(0x5E22);
    let model = trained_model(&mut rng);
    let traces = traces(&mut rng, 80);
    let sequential = serve_sequential(&model, &traces);
    // Sequential serving itself matches the batch classifier.
    for (trace, verdict) in traces.iter().zip(&sequential) {
        assert_eq!(verdict.class, model.predict(trace));
    }
    let reference = verdict_fnv(&sequential);
    for capacity in [1usize, 4, 17, 64] {
        let batched = serve_batched(&model, &traces, capacity);
        assert_eq!(
            batched, sequential,
            "batched at capacity {capacity} diverged from sequential"
        );
        assert_eq!(verdict_fnv(&batched), reference);
    }
}

#[test]
fn quantized_batched_matches_quantized_sequential() {
    let mut rng = SmallRng::seed_from_u64(0x5E23);
    let model = trained_model(&mut rng);
    let traces = traces(&mut rng, 60);
    for scheme in [QuantScheme::I8, QuantScheme::I16] {
        let quantized = QuantizedSeqClassifier::quantize(&model, scheme);
        let sequential = serve_sequential(&quantized, &traces);
        for (trace, verdict) in traces.iter().zip(&sequential) {
            assert_eq!(verdict.class, quantized.predict(trace), "{}", scheme.name());
        }
        for capacity in [1usize, 4, 17, 64] {
            assert_eq!(
                serve_batched(&quantized, &traces, capacity),
                sequential,
                "{} batched at capacity {capacity} diverged",
                scheme.name()
            );
        }
    }
}

#[test]
fn i16_quantization_tracks_the_f32_model_closely() {
    let mut rng = SmallRng::seed_from_u64(0x5E24);
    let model = trained_model(&mut rng);
    let traces = traces(&mut rng, 60);
    let quantized = QuantizedSeqClassifier::quantize(&model, QuantScheme::I16);
    let agree = traces
        .iter()
        .filter(|t| quantized.predict(t) == model.predict(t))
        .count();
    // i16 keeps ~15 bits of weight precision; verdict flips should be
    // rare even near decision boundaries on random traces.
    assert!(
        agree * 10 >= traces.len() * 9,
        "i16 verdicts agree on only {agree}/{} traces",
        traces.len()
    );
}

#[test]
fn lane_recycling_reuses_lanes_and_rejects_stale_handles() {
    let mut rng = SmallRng::seed_from_u64(0x5E25);
    let model = trained_model(&mut rng);
    let mut batch = SessionBatch::new(&model, 2);
    let a = batch.attach(1).expect("lane free");
    let b = batch.attach(3).expect("lane free");
    assert!(batch.is_full());
    assert!(batch.attach(2).is_none(), "no third lane");
    batch.stage(a, &[0.1, 0.2]);
    batch.stage(b, &[0.3, 0.4]);
    let done = batch.step(&model);
    // Only the 1-step session finished; its lane is free again.
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, a);
    assert_eq!(done[0].1.steps, 1);
    assert_eq!(batch.active_sessions(), 1);
    let c = batch.attach(1).expect("lane recycled");
    assert_eq!(c.lane(), a.lane(), "freed lane is reused");
    assert_ne!(c, a, "generation distinguishes the reuse");
    // A recycled lane starts from zeroed state: same verdict as a fresh
    // single-session run of the same 1-step trace.
    batch.stage(c, &[0.5, -0.5]);
    batch.stage(b, &[0.3, 0.4]);
    let done = batch.step(&model);
    assert_eq!(done.len(), 1);
    let mut solo = StreamSession::new(&model, 1);
    let expect = solo.push(&model, &[0.5, -0.5]).expect("verdict");
    assert_eq!(done[0].1, expect);
}

#[test]
#[should_panic(expected = "stale or foreign session handle")]
fn staging_through_a_stale_handle_panics() {
    let mut rng = SmallRng::seed_from_u64(0x5E26);
    let model = trained_model(&mut rng);
    let mut batch = SessionBatch::new(&model, 1);
    let a = batch.attach(1).expect("lane free");
    batch.stage(a, &[0.0, 0.0]);
    let _ = batch.step(&model);
    let _b = batch.attach(2).expect("lane recycled");
    batch.stage(a, &[0.0, 0.0]); // `a` finished; its handle is stale
}

#[test]
fn verdict_fnv_is_order_sensitive() {
    use serve::Verdict;
    let a = [
        Verdict { class: 1, steps: 4 },
        Verdict { class: 2, steps: 5 },
    ];
    let b = [
        Verdict { class: 2, steps: 5 },
        Verdict { class: 1, steps: 4 },
    ];
    assert_ne!(verdict_fnv(&a), verdict_fnv(&b));
    assert_eq!(verdict_fnv(&a), verdict_fnv(a.as_ref()));
}
