//! A pattern-history table of 2-bit saturating counters.

use serde::{Deserialize, Serialize};

/// The four states of a 2-bit saturating counter.
#[allow(clippy::enum_variant_names)] // the textbook state names share a postfix
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
enum Counter {
    StronglyNotTaken,
    WeaklyNotTaken,
    WeaklyTaken,
    StronglyTaken,
}

impl Counter {
    fn predicts_taken(self) -> bool {
        matches!(self, Counter::WeaklyTaken | Counter::StronglyTaken)
    }

    fn update(self, taken: bool) -> Counter {
        use Counter::*;
        match (self, taken) {
            (StronglyNotTaken, true) => WeaklyNotTaken,
            (WeaklyNotTaken, true) => WeaklyTaken,
            (WeaklyTaken, true) => StronglyTaken,
            (StronglyTaken, true) => StronglyTaken,
            (StronglyNotTaken, false) => StronglyNotTaken,
            (WeaklyNotTaken, false) => StronglyNotTaken,
            (WeaklyTaken, false) => WeaklyNotTaken,
            (StronglyTaken, false) => WeaklyTaken,
        }
    }
}

/// A direct-mapped pattern-history table of 2-bit saturating counters,
/// indexed by (a hash of) the branch address.
///
/// This is the structure Spectre-V1 mistraining manipulates: feeding the
/// bounds check several in-bounds (taken) executions drives its counter to
/// *strongly taken*, so the next out-of-bounds execution is predicted
/// taken and the body runs transiently.
///
/// ```
/// let mut pht = specsim::TwoBitPredictor::new(1024);
/// let branch = 0x401000;
/// for _ in 0..3 { pht.update(branch, true); }
/// assert!(pht.predict(branch));
/// pht.update(branch, false);       // one mispredict only weakens it
/// assert!(pht.predict(branch));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoBitPredictor {
    table: Vec<Counter>,
}

impl TwoBitPredictor {
    /// Creates a predictor with `entries` counters, all initialized to
    /// *weakly not taken*.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "predictor size must be a power of two"
        );
        TwoBitPredictor {
            table: vec![Counter::WeaklyNotTaken; entries],
        }
    }

    fn index(&self, branch_addr: u64) -> usize {
        // Cheap avalanche so nearby branches don't all collide.
        let mut x = branch_addr;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x as usize) & (self.table.len() - 1)
    }

    /// Predicts whether the branch at `branch_addr` is taken.
    #[must_use]
    pub fn predict(&self, branch_addr: u64) -> bool {
        self.table[self.index(branch_addr)].predicts_taken()
    }

    /// Records the resolved outcome of the branch at `branch_addr`.
    pub fn update(&mut self, branch_addr: u64, taken: bool) {
        let idx = self.index(branch_addr);
        self.table[idx] = self.table[idx].update(taken);
    }

    /// Number of counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Always `false`: the constructor rejects empty tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_prediction_is_not_taken() {
        let pht = TwoBitPredictor::new(64);
        assert!(!pht.predict(0x1234));
    }

    #[test]
    fn training_to_taken_requires_two_updates() {
        let mut pht = TwoBitPredictor::new(64);
        pht.update(0x10, true); // weakly-not-taken -> weakly-taken
        assert!(pht.predict(0x10));
        let mut pht2 = TwoBitPredictor::new(64);
        pht2.update(0x10, false);
        pht2.update(0x10, true);
        assert!(
            !pht2.predict(0x10),
            "one taken after strong-NT is not enough"
        );
    }

    #[test]
    fn hysteresis_survives_single_mispredict() {
        let mut pht = TwoBitPredictor::new(64);
        for _ in 0..4 {
            pht.update(0x20, true);
        }
        pht.update(0x20, false);
        assert!(pht.predict(0x20), "strongly-taken weathers one not-taken");
        pht.update(0x20, false);
        assert!(!pht.predict(0x20));
    }

    #[test]
    fn distinct_branches_are_independent() {
        let mut pht = TwoBitPredictor::new(1024);
        for _ in 0..4 {
            pht.update(0xAAAA_0000, true);
        }
        assert!(pht.predict(0xAAAA_0000));
        assert!(!pht.predict(0xBBBB_0000));
    }

    #[test]
    fn saturating_behaviour() {
        use super::Counter::*;
        assert_eq!(StronglyTaken.update(true), StronglyTaken);
        assert_eq!(StronglyNotTaken.update(false), StronglyNotTaken);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = TwoBitPredictor::new(100);
    }
}
