//! The Spectre-V1 bounds-check-bypass gadget.

use crate::branch::TwoBitPredictor;
use memsim::MemoryHierarchy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a [`SpectreV1Gadget`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GadgetConfig {
    /// Length of the public array guarded by the bounds check.
    pub array1_len: usize,
    /// Base address of the shared probe array (`array2`).
    pub probe_base: u64,
    /// Stride between probe-array entries (one page defeats the adjacent
    /// line prefetcher in the classic PoCs; we default to 512 bytes as the
    /// paper's gadget does).
    pub probe_stride: u64,
    /// Simulated address of the bounds-check branch.
    pub branch_addr: u64,
    /// Probability that a mispredicted out-of-bounds call's speculation
    /// window is long enough for the transient loads to complete.
    pub window_success: f64,
}

impl GadgetConfig {
    /// The classic 16-entry gadget with 512-byte probe stride.
    #[must_use]
    pub fn classic() -> Self {
        GadgetConfig {
            array1_len: 16,
            probe_base: 0x20_0000,
            probe_stride: 512,
            branch_addr: 0x40_1000,
            window_success: 0.92,
        }
    }
}

impl Default for GadgetConfig {
    fn default() -> Self {
        GadgetConfig::classic()
    }
}

/// The outcome of one gadget invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GadgetCall {
    /// Whether the bounds check architecturally passed (in-bounds index).
    pub in_bounds: bool,
    /// Whether the predictor predicted the check to pass.
    pub predicted_taken: bool,
    /// Whether a *transient* secret-dependent load reached the cache
    /// (only possible on a mispredicted out-of-bounds call).
    pub transient_leak: bool,
}

/// A victim function containing a Spectre-V1 gadget:
///
/// ```c
/// if (x < array1_len)             // branch the attacker mistrains
///     y = array2[array1[x] * stride];
/// ```
///
/// In-bounds calls execute architecturally and train the bounds check
/// toward *taken*. An out-of-bounds call with a trained predictor
/// speculatively reads `secret[x - array1_len]` and touches
/// `array2[secret_byte * stride]`, leaving the only architectural trace in
/// the cache — which Flush+Reload (timed by SegScope) recovers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectreV1Gadget {
    config: GadgetConfig,
    predictor: TwoBitPredictor,
    secret: Vec<u8>,
}

impl SpectreV1Gadget {
    /// Creates a gadget guarding `secret` (the out-of-bounds bytes the
    /// attacker wants).
    #[must_use]
    pub fn new(config: GadgetConfig, secret: impl Into<Vec<u8>>) -> Self {
        SpectreV1Gadget {
            config,
            predictor: TwoBitPredictor::new(1024),
            secret: secret.into(),
        }
    }

    /// The gadget configuration.
    #[must_use]
    pub fn config(&self) -> &GadgetConfig {
        &self.config
    }

    /// Length of the protected secret.
    #[must_use]
    pub fn secret_len(&self) -> usize {
        self.secret.len()
    }

    /// The probe-array address a given byte value maps to.
    #[must_use]
    pub fn probe_addr(&self, byte: u8) -> u64 {
        self.config.probe_base + u64::from(byte) * self.config.probe_stride
    }

    /// Ground-truth secret byte at out-of-bounds offset `i` (test support;
    /// a real attacker cannot call this).
    #[must_use]
    pub fn secret_byte(&self, i: usize) -> u8 {
        self.secret[i]
    }

    /// Invokes the victim function with index `x`.
    ///
    /// `x < array1_len` is an architectural in-bounds call: it loads the
    /// corresponding probe line *architecturally* and trains the branch.
    /// `x >= array1_len` is the attack call: whether the secret-indexed
    /// probe line gets installed depends on the predictor state and the
    /// speculation-window coin flip.
    ///
    /// # Panics
    ///
    /// Panics if an out-of-bounds `x` reaches past the protected secret.
    pub fn call<R: Rng + ?Sized>(
        &mut self,
        x: usize,
        mem: &mut MemoryHierarchy,
        rng: &mut R,
    ) -> GadgetCall {
        let in_bounds = x < self.config.array1_len;
        let predicted_taken = self.predictor.predict(self.config.branch_addr);
        self.predictor.update(self.config.branch_addr, in_bounds);
        if in_bounds {
            // Architectural execution: publicly-known value, value itself
            // irrelevant to the attack; model it as byte 0 of array1.
            let public_byte = (x % 256) as u8;
            mem.access(self.probe_addr(public_byte));
            return GadgetCall {
                in_bounds,
                predicted_taken,
                transient_leak: false,
            };
        }
        let offset = x - self.config.array1_len;
        assert!(
            offset < self.secret.len(),
            "out-of-bounds index past secret"
        );
        let mut transient_leak = false;
        if predicted_taken && rng.gen::<f64>() < self.config.window_success {
            // Transient path: the secret-dependent load completes before
            // the squash and installs the probe line.
            let byte = self.secret[offset];
            mem.access(self.probe_addr(byte));
            transient_leak = true;
        }
        GadgetCall {
            in_bounds,
            predicted_taken,
            transient_leak,
        }
    }

    /// Convenience mistraining helper: `n` in-bounds calls on index
    /// `x % array1_len`.
    pub fn mistrain<R: Rng + ?Sized>(&mut self, n: usize, mem: &mut MemoryHierarchy, rng: &mut R) {
        for i in 0..n {
            let _ = self.call(i % self.config.array1_len, mem, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (SpectreV1Gadget, MemoryHierarchy, SmallRng) {
        (
            SpectreV1Gadget::new(GadgetConfig::classic(), *b"S"),
            MemoryHierarchy::default(),
            SmallRng::seed_from_u64(0x5bec),
        )
    }

    #[test]
    fn untrained_gadget_does_not_leak() {
        let (mut gadget, mut mem, mut rng) = setup();
        let call = gadget.call(gadget.config().array1_len, &mut mem, &mut rng);
        assert!(!call.in_bounds);
        assert!(!call.predicted_taken);
        assert!(!call.transient_leak);
        let secret_addr = gadget.probe_addr(b'S');
        assert_eq!(mem.peek_level(secret_addr), None);
    }

    #[test]
    fn mistrained_gadget_leaks_secret_line() {
        let (mut gadget, mut mem, mut rng) = setup();
        gadget.mistrain(5, &mut mem, &mut rng);
        // Flush the probe array so only the transient access re-warms it.
        for v in 0u16..=255 {
            mem.clflush(gadget.probe_addr(v as u8));
        }
        let mut leaked = false;
        for _ in 0..12 {
            let call = gadget.call(gadget.config().array1_len, &mut mem, &mut rng);
            leaked |= call.transient_leak;
            gadget.mistrain(5, &mut mem, &mut rng);
        }
        assert!(leaked, "12 attempts at 92% window success should leak");
        let secret_addr = gadget.probe_addr(b'S');
        assert!(mem.peek_level(secret_addr).is_some(), "secret line cached");
    }

    #[test]
    fn in_bounds_calls_never_flag_leak() {
        let (mut gadget, mut mem, mut rng) = setup();
        for i in 0..32 {
            let call = gadget.call(i % 16, &mut mem, &mut rng);
            assert!(call.in_bounds);
            assert!(!call.transient_leak);
        }
    }

    #[test]
    fn out_of_bounds_resolution_retrains_predictor() {
        let (mut gadget, mut mem, mut rng) = setup();
        gadget.mistrain(5, &mut mem, &mut rng);
        // Two resolved not-taken branches clear the training.
        let _ = gadget.call(16, &mut mem, &mut rng);
        let _ = gadget.call(16, &mut mem, &mut rng);
        let call = gadget.call(16, &mut mem, &mut rng);
        assert!(
            !call.predicted_taken,
            "predictor should have re-learned not-taken"
        );
    }

    #[test]
    #[should_panic(expected = "past secret")]
    fn oob_past_secret_panics() {
        let (mut gadget, mut mem, mut rng) = setup();
        let _ = gadget.call(16 + 1, &mut mem, &mut rng);
    }

    #[test]
    fn probe_addresses_are_distinct_per_byte() {
        let (gadget, _, _) = setup();
        let a = gadget.probe_addr(1);
        let b = gadget.probe_addr(2);
        assert_eq!(b - a, gadget.config().probe_stride);
    }
}
