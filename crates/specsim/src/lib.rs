//! Speculative-execution substrate for the SegScope reproduction.
//!
//! Three mechanisms the paper's case studies build on:
//!
//! * [`TwoBitPredictor`] — a pattern-history table of 2-bit saturating
//!   counters, the branch predictor that Spectre mistraining manipulates.
//! * [`SpectreV1Gadget`] — a bounds-check-bypass gadget: in-bounds calls
//!   train the predictor, an out-of-bounds call mis-speculates with some
//!   probability and transiently installs a secret-indexed cache line in a
//!   shared probe array (paper Sections IV-D and IV-F).
//! * [`mwait`] — the `umonitor`/`umwait` semantics the Spectral attack
//!   uses, including the architectural-state truth table of paper
//!   Table VI (carry flag vs wake cause).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod gadget;
pub mod mwait;

pub use branch::TwoBitPredictor;
pub use gadget::{GadgetCall, GadgetConfig, SpectreV1Gadget};
pub use mwait::{resolve_wait, ArchState, WakeCause};
