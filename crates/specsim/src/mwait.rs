//! `umonitor`/`umwait` semantics: the wait-for-cacheline-write primitive
//! the Spectral attack turns into an architectural side channel, and the
//! wake-cause truth table of paper Table VI.

use irq_time::Ps;
use serde::{Deserialize, Serialize};

// `specsim` only needs the time unit from the interrupt substrate; alias the
// module to keep the dependency surface obvious.
use irq as irq_time;

/// Why a `umwait` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WakeCause {
    /// The deadline passed with no event.
    Timeout,
    /// Another core wrote the monitored cache line.
    CachelineWrite,
    /// An interrupt was delivered to the waiting core.
    Interrupt,
}

/// The architectural state a waker leaves behind, per paper Table VI.
///
/// `EFLAGS.CF` distinguishes timeouts from everything else; the monitored
/// data-segment selector (planted by SegScope before the wait) additionally
/// distinguishes interrupts from genuine cache-line writes — the refinement
/// that removes Spectral's interrupt-induced bit errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArchState {
    /// The carry flag after `umwait` (1 = deadline expired).
    pub carry_flag: bool,
    /// Whether a pre-set non-zero null selector survived (1 = survived,
    /// 0 = an interrupt's kernel return cleared it).
    pub selector_preserved: bool,
}

impl ArchState {
    /// The Table VI mapping from wake cause to architectural state.
    #[must_use]
    pub fn of(cause: WakeCause) -> ArchState {
        match cause {
            WakeCause::Timeout => ArchState {
                carry_flag: true,
                selector_preserved: true,
            },
            WakeCause::CachelineWrite => ArchState {
                carry_flag: false,
                selector_preserved: true,
            },
            WakeCause::Interrupt => ArchState {
                carry_flag: false,
                selector_preserved: false,
            },
        }
    }

    /// What a *plain* Spectral attacker (carry flag only) concludes:
    /// `true` = "the line was written". Interrupts alias to writes — the
    /// noise source SegScope removes.
    #[must_use]
    pub fn naive_write_detected(&self) -> bool {
        !self.carry_flag
    }

    /// What a SegScope-enhanced attacker concludes: a write is only
    /// reported when the carry flag is clear *and* the planted selector
    /// survived; wake-ups whose selector was scrubbed are discarded as
    /// interrupt noise.
    #[must_use]
    pub fn filtered_write_detected(&self) -> Option<bool> {
        if !self.selector_preserved {
            None // interrupted measurement: discard
        } else {
            Some(!self.carry_flag)
        }
    }
}

/// Resolves which of the three wake causes fires first for a wait armed at
/// `armed_at` with the given `timeout`, when the next cache-line write
/// would land at `write_at` and the next interrupt at `irq_at` (either may
/// be `None` = never).
///
/// Ties favour the earlier architectural event over the timeout, and the
/// write over the interrupt (matching how a real core retires the
/// monitor hit before taking the interrupt).
///
/// ```
/// use specsim::{resolve_wait, WakeCause};
/// use irq::Ps;
/// let (cause, at) = resolve_wait(
///     Ps::ZERO,
///     Ps::from_us(100),
///     Some(Ps::from_us(40)),
///     Some(Ps::from_us(60)),
/// );
/// assert_eq!(cause, WakeCause::CachelineWrite);
/// assert_eq!(at, Ps::from_us(40));
/// ```
#[must_use]
pub fn resolve_wait(
    armed_at: Ps,
    timeout: Ps,
    write_at: Option<Ps>,
    irq_at: Option<Ps>,
) -> (WakeCause, Ps) {
    let deadline = armed_at + timeout;
    let write = write_at.filter(|&t| t >= armed_at && t <= deadline);
    let irq = irq_at.filter(|&t| t >= armed_at && t <= deadline);
    match (write, irq) {
        (Some(w), Some(i)) if w <= i => (WakeCause::CachelineWrite, w),
        (Some(_), Some(i)) => (WakeCause::Interrupt, i),
        (Some(w), None) => (WakeCause::CachelineWrite, w),
        (None, Some(i)) => (WakeCause::Interrupt, i),
        (None, None) => (WakeCause::Timeout, deadline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_truth_table() {
        // Rows of paper Table VI.
        let timeout = ArchState::of(WakeCause::Timeout);
        assert!(timeout.carry_flag && timeout.selector_preserved);
        let write = ArchState::of(WakeCause::CachelineWrite);
        assert!(!write.carry_flag && write.selector_preserved);
        let irq = ArchState::of(WakeCause::Interrupt);
        assert!(!irq.carry_flag && !irq.selector_preserved);
    }

    #[test]
    fn naive_detector_confuses_interrupt_with_write() {
        let write = ArchState::of(WakeCause::CachelineWrite);
        let irq = ArchState::of(WakeCause::Interrupt);
        assert!(write.naive_write_detected());
        assert!(
            irq.naive_write_detected(),
            "this aliasing is Spectral's error source"
        );
    }

    #[test]
    fn filtered_detector_discards_interrupts() {
        assert_eq!(
            ArchState::of(WakeCause::CachelineWrite).filtered_write_detected(),
            Some(true)
        );
        assert_eq!(
            ArchState::of(WakeCause::Timeout).filtered_write_detected(),
            Some(false)
        );
        assert_eq!(
            ArchState::of(WakeCause::Interrupt).filtered_write_detected(),
            None
        );
    }

    #[test]
    fn resolve_prefers_earliest_event() {
        let (cause, at) = resolve_wait(
            Ps::ZERO,
            Ps::from_us(100),
            Some(Ps::from_us(70)),
            Some(Ps::from_us(30)),
        );
        assert_eq!(cause, WakeCause::Interrupt);
        assert_eq!(at, Ps::from_us(30));
    }

    #[test]
    fn resolve_times_out_when_events_are_late() {
        let (cause, at) = resolve_wait(
            Ps::ZERO,
            Ps::from_us(100),
            Some(Ps::from_us(150)),
            Some(Ps::from_us(200)),
        );
        assert_eq!(cause, WakeCause::Timeout);
        assert_eq!(at, Ps::from_us(100));
    }

    #[test]
    fn resolve_ignores_events_before_arming() {
        let (cause, _) = resolve_wait(
            Ps::from_us(50),
            Ps::from_us(100),
            Some(Ps::from_us(10)), // stale write before umonitor
            None,
        );
        assert_eq!(cause, WakeCause::Timeout);
    }

    #[test]
    fn write_wins_ties() {
        let t = Ps::from_us(42);
        let (cause, _) = resolve_wait(Ps::ZERO, Ps::from_us(100), Some(t), Some(t));
        assert_eq!(cause, WakeCause::CachelineWrite);
    }
}
