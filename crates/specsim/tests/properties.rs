//! Property-based tests for the speculation substrate.

use irq::Ps;
use memsim::MemoryHierarchy;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use specsim::{resolve_wait, ArchState, GadgetConfig, SpectreV1Gadget, TwoBitPredictor, WakeCause};

proptest! {
    /// The predictor's output only depends on its training history for
    /// that branch: two identical histories agree.
    #[test]
    fn predictor_is_deterministic(
        history in prop::collection::vec(any::<bool>(), 0..32),
        branch in any::<u64>(),
    ) {
        let mut a = TwoBitPredictor::new(256);
        let mut b = TwoBitPredictor::new(256);
        for &t in &history {
            a.update(branch, t);
            b.update(branch, t);
        }
        prop_assert_eq!(a.predict(branch), b.predict(branch));
    }

    /// After two consecutive identical outcomes, the predictor always
    /// agrees with that outcome (2-bit counter convergence).
    #[test]
    fn two_identical_outcomes_converge(
        prefix in prop::collection::vec(any::<bool>(), 0..16),
        outcome in any::<bool>(),
        branch in any::<u64>(),
    ) {
        let mut pht = TwoBitPredictor::new(256);
        for &t in &prefix {
            pht.update(branch, t);
        }
        pht.update(branch, outcome);
        pht.update(branch, outcome);
        prop_assert_eq!(pht.predict(branch), outcome);
    }

    /// In-bounds gadget calls never leak, whatever the call sequence.
    #[test]
    fn in_bounds_never_leaks(calls in prop::collection::vec(0usize..16, 1..64)) {
        let mut gadget = SpectreV1Gadget::new(GadgetConfig::classic(), *b"X");
        let mut mem = MemoryHierarchy::default();
        let mut rng = SmallRng::seed_from_u64(9);
        for &x in &calls {
            let outcome = gadget.call(x, &mut mem, &mut rng);
            prop_assert!(outcome.in_bounds);
            prop_assert!(!outcome.transient_leak);
        }
    }

    /// The wake-cause resolver returns a cause consistent with its
    /// inputs: never a write when no write was scheduled, never later
    /// than the deadline, never before the arming instant.
    #[test]
    fn resolve_wait_consistent(
        timeout_us in 1u64..1_000,
        write_us in proptest::option::of(0u64..2_000),
        irq_us in proptest::option::of(0u64..2_000),
    ) {
        let armed = Ps::from_us(100);
        let timeout = Ps::from_us(timeout_us);
        let write_at = write_us.map(Ps::from_us);
        let irq_at = irq_us.map(Ps::from_us);
        let (cause, at) = resolve_wait(armed, timeout, write_at, irq_at);
        prop_assert!(at >= armed);
        prop_assert!(at <= armed + timeout);
        match cause {
            WakeCause::CachelineWrite => prop_assert_eq!(Some(at), write_at),
            WakeCause::Interrupt => prop_assert_eq!(Some(at), irq_at),
            WakeCause::Timeout => prop_assert_eq!(at, armed + timeout),
        }
        // Table VI invariant: only interrupts clear the selector; only
        // timeouts set CF.
        let arch = ArchState::of(cause);
        prop_assert_eq!(arch.carry_flag, cause == WakeCause::Timeout);
        prop_assert_eq!(!arch.selector_preserved, cause == WakeCause::Interrupt);
    }

    /// Probe addresses are injective per gadget: distinct byte values
    /// map to distinct cache lines.
    #[test]
    fn probe_addresses_injective(a in any::<u8>(), b in any::<u8>()) {
        prop_assume!(a != b);
        let gadget = SpectreV1Gadget::new(GadgetConfig::classic(), *b"S");
        let line = |v: u8| gadget.probe_addr(v) / 64;
        prop_assert_ne!(line(a), line(b));
    }
}
