//! The protection checks: data-segment access (paper Fig. 1), segment-register
//! loads, and the privilege-level-return scrub (paper Algorithm 1).

use crate::error::SegError;
use crate::regfile::{DataSegReg, SegmentRegister, SegmentRegisterFile};
use crate::selector::{PrivilegeLevel, Selector};
use crate::table::DescriptorTables;
use serde::{Deserialize, Serialize};

/// Data-segment access rule (paper Fig. 1): access is granted only when the
/// CPL and the selector's RPL are both numerically less than or equal to the
/// segment's DPL — i.e. the *effective* privilege `max(CPL, RPL)` must be at
/// least as privileged as the segment requires.
///
/// ```
/// use x86seg::{data_access_allowed, PrivilegeLevel::*};
/// assert!(data_access_allowed(Ring0, Ring0, Ring3));  // kernel touching user data
/// assert!(data_access_allowed(Ring3, Ring3, Ring3));  // user touching user data
/// assert!(!data_access_allowed(Ring3, Ring3, Ring0)); // user touching kernel data
/// assert!(!data_access_allowed(Ring0, Ring3, Ring0)); // kernel deliberately lowered by RPL
/// ```
#[must_use]
pub fn data_access_allowed(cpl: PrivilegeLevel, rpl: PrivilegeLevel, dpl: PrivilegeLevel) -> bool {
    cpl <= dpl && rpl <= dpl
}

/// Loads `selector` into data-segment register `reg`, performing the checks
/// an x86 `mov sreg, r16` performs.
///
/// Null selectors (`0x0000..=0x0003`) load without any fault and leave the
/// descriptor cache empty — the property that makes the SegScope marker
/// placement silent. Non-null selectors fetch and validate a descriptor and
/// cache it in the hidden part on success.
///
/// # Errors
///
/// Returns the fault a real load would raise: table/emptiness errors from
/// the descriptor fetch, [`SegError::NotLoadable`] for unsuitable descriptor
/// types, [`SegError::PrivilegeViolation`] when Fig. 1's check fails, and
/// [`SegError::NotPresent`] for not-present segments.
pub fn load_data_segment(
    regs: &mut SegmentRegisterFile,
    reg: DataSegReg,
    selector: Selector,
    tables: &DescriptorTables,
    cpl: PrivilegeLevel,
) -> Result<(), SegError> {
    if selector.is_null() {
        regs.load_null(reg, selector);
        return Ok(());
    }
    let descriptor = tables.lookup(selector)?;
    if !descriptor.kind().loadable_into_data_register() {
        return Err(SegError::NotLoadable { selector });
    }
    if !data_access_allowed(cpl, selector.rpl(), descriptor.dpl()) {
        return Err(SegError::PrivilegeViolation {
            cpl,
            rpl: selector.rpl(),
            dpl: descriptor.dpl(),
        });
    }
    if !descriptor.is_present() {
        return Err(SegError::NotPresent { selector });
    }
    *regs.register_mut(reg) = SegmentRegister::loaded(selector, descriptor);
    Ok(())
}

/// Validates a memory access *through* an already-loaded register, as the
/// hardware does on every segmented access: null selectors fault with `#GP`,
/// and the offset must satisfy the cached limit.
///
/// # Errors
///
/// [`SegError::NullSegmentAccess`] when the register holds a null selector,
/// [`SegError::EmptyDescriptor`] when no descriptor is cached, and
/// [`SegError::LimitViolation`] when `offset` exceeds the segment limit.
pub fn access_through(register: &SegmentRegister, offset: u64) -> Result<u64, SegError> {
    if register.selector().is_null() {
        return Err(SegError::NullSegmentAccess);
    }
    let descriptor = register
        .descriptor_cache()
        .ok_or(SegError::EmptyDescriptor {
            selector: register.selector(),
        })?;
    descriptor
        .translate(offset)
        .ok_or(SegError::LimitViolation {
            offset,
            limit: descriptor.limit(),
        })
}

/// Which registers a privilege-level return scrubbed, and why.
///
/// This is the *architectural footprint* of paper Algorithm 1 that the
/// SegScope probe observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ReturnFootprint {
    cleared_null: [bool; 4],
    cleared_sensitive: [bool; 4],
}

impl ReturnFootprint {
    fn idx(reg: DataSegReg) -> usize {
        match reg {
            DataSegReg::Ds => 0,
            DataSegReg::Es => 1,
            DataSegReg::Fs => 2,
            DataSegReg::Gs => 3,
        }
    }

    /// Returns `true` if `reg` was cleared for any reason.
    #[must_use]
    pub fn was_cleared(&self, reg: DataSegReg) -> bool {
        let i = Self::idx(reg);
        self.cleared_null[i] || self.cleared_sensitive[i]
    }

    /// Returns `true` if `reg` was cleared because it held a null selector
    /// (the SegScope marker path).
    #[must_use]
    pub fn cleared_as_null(&self, reg: DataSegReg) -> bool {
        self.cleared_null[Self::idx(reg)]
    }

    /// Returns `true` if `reg` was cleared because its descriptor cache
    /// pointed at a higher-privileged (sensitive) segment.
    #[must_use]
    pub fn cleared_as_sensitive(&self, reg: DataSegReg) -> bool {
        self.cleared_sensitive[Self::idx(reg)]
    }

    /// Returns `true` if no register was touched (e.g. same-privilege
    /// return).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !DataSegReg::ALL.iter().any(|&r| self.was_cleared(r))
    }

    /// Number of registers cleared.
    #[must_use]
    pub fn cleared_count(&self) -> usize {
        DataSegReg::ALL
            .iter()
            .filter(|&&r| self.was_cleared(r))
            .count()
    }
}

/// Paper Algorithm 1: the check x86 CPUs perform when an `iret` (or far
/// return) transfers control to an *outer* (less privileged) level.
///
/// `return_rpl` is `CS.RPL` of the frame being returned to; `cpl` is the
/// privilege level executing the return (ring 0 for an interrupt handler).
/// When `return_rpl > cpl` — a genuine outward transition — each of
/// DS/ES/FS/GS is scrubbed to the zero selector if it either
///
/// 1. holds a *null* selector (including the non-zero null values `0x1`,
///    `0x2`, `0x3` — this is the SegScope footprint), or
/// 2. caches a descriptor whose DPL is more privileged than the destination
///    level and whose type is sensitive (data or non-conforming code), so
///    that no kernel-segment access capability leaks to user code.
///
/// Same- or inward-privilege returns leave all registers untouched.
pub fn protected_mode_return(
    regs: &mut SegmentRegisterFile,
    return_rpl: PrivilegeLevel,
    cpl: PrivilegeLevel,
) -> ReturnFootprint {
    let mut footprint = ReturnFootprint::default();
    // Line 5 of Algorithm 1: only act when returning to an outer level.
    if return_rpl <= cpl {
        return footprint;
    }
    for reg in DataSegReg::ALL {
        let i = ReturnFootprint::idx(reg);
        let register = regs.register(reg);
        if register.selector().is_null() {
            // First condition: null selector (any RPL) — reset to exactly 0.
            footprint.cleared_null[i] = !register.selector().is_zero();
            regs.register_mut(reg).clear();
            continue;
        }
        if let Some(descriptor) = register.descriptor_cache() {
            // Second condition: the cached descriptor protects content
            // more privileged than the destination ring.
            if descriptor.dpl() < return_rpl && descriptor.is_sensitive() {
                footprint.cleared_sensitive[i] = true;
                regs.register_mut(reg).clear();
            }
        }
    }
    footprint
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{DescriptorKind, SegmentDescriptor};
    use crate::selector::TableIndicator;

    fn tables() -> DescriptorTables {
        DescriptorTables::linux_flat()
    }

    #[test]
    fn fig1_truth_table() {
        use PrivilegeLevel::*;
        // (cpl, rpl, dpl, allowed)
        let cases = [
            (Ring0, Ring0, Ring0, true),
            (Ring0, Ring0, Ring3, true),
            (Ring3, Ring3, Ring3, true),
            (Ring3, Ring0, Ring3, true),
            (Ring3, Ring3, Ring0, false),
            (Ring0, Ring3, Ring0, false), // RPL deliberately weakens kernel
            (Ring3, Ring0, Ring0, false), // CPL still too weak
            (Ring1, Ring2, Ring2, true),
            (Ring2, Ring1, Ring1, false),
        ];
        for (cpl, rpl, dpl, want) in cases {
            assert_eq!(
                data_access_allowed(cpl, rpl, dpl),
                want,
                "cpl={cpl} rpl={rpl} dpl={dpl}"
            );
        }
    }

    #[test]
    fn null_loads_never_fault() {
        let mut regs = SegmentRegisterFile::flat_user();
        for raw in 0u16..=3 {
            let sel = Selector::from_bits(raw);
            load_data_segment(
                &mut regs,
                DataSegReg::Gs,
                sel,
                &tables(),
                PrivilegeLevel::Ring3,
            )
            .expect("null selector load must not fault");
            assert_eq!(regs.selector(DataSegReg::Gs), sel);
            assert!(regs.register(DataSegReg::Gs).descriptor_cache().is_none());
        }
    }

    #[test]
    fn user_cannot_load_kernel_data() {
        let mut regs = SegmentRegisterFile::flat_user();
        let err = load_data_segment(
            &mut regs,
            DataSegReg::Es,
            DescriptorTables::kernel_data_selector().with_rpl(PrivilegeLevel::Ring3),
            &tables(),
            PrivilegeLevel::Ring3,
        )
        .unwrap_err();
        assert!(matches!(err, SegError::PrivilegeViolation { .. }));
    }

    #[test]
    fn kernel_cannot_use_rpl3_selector_for_kernel_data() {
        // RPL acts as an override that *weakens* privilege (confused-deputy
        // defense): even at CPL0, an RPL3 selector cannot reach DPL0 data.
        let mut regs = SegmentRegisterFile::flat_user();
        let sel = DescriptorTables::kernel_data_selector().with_rpl(PrivilegeLevel::Ring3);
        let err = load_data_segment(
            &mut regs,
            DataSegReg::Ds,
            sel,
            &tables(),
            PrivilegeLevel::Ring0,
        )
        .unwrap_err();
        assert!(matches!(err, SegError::PrivilegeViolation { .. }));
    }

    #[test]
    fn not_present_descriptor_faults_np() {
        let mut tb = tables();
        tb.gdt.install(
            6,
            SegmentDescriptor::flat_data(PrivilegeLevel::Ring3).not_present(),
        );
        let sel = Selector::new(6, TableIndicator::Gdt, PrivilegeLevel::Ring3);
        let mut regs = SegmentRegisterFile::flat_user();
        let err = load_data_segment(&mut regs, DataSegReg::Ds, sel, &tb, PrivilegeLevel::Ring3)
            .unwrap_err();
        assert_eq!(err, SegError::NotPresent { selector: sel });
    }

    #[test]
    fn system_descriptor_not_loadable() {
        let mut tb = tables();
        tb.gdt.install(
            7,
            SegmentDescriptor::new(0, 0xfff, PrivilegeLevel::Ring3, DescriptorKind::System),
        );
        let sel = Selector::new(7, TableIndicator::Gdt, PrivilegeLevel::Ring3);
        let mut regs = SegmentRegisterFile::flat_user();
        let err = load_data_segment(&mut regs, DataSegReg::Gs, sel, &tb, PrivilegeLevel::Ring3)
            .unwrap_err();
        assert_eq!(err, SegError::NotLoadable { selector: sel });
    }

    #[test]
    fn access_through_null_selector_is_gp() {
        let regs = SegmentRegisterFile::flat_user();
        // GS starts cleared (zero null selector).
        assert_eq!(
            access_through(regs.register(DataSegReg::Gs), 0),
            Err(SegError::NullSegmentAccess)
        );
    }

    #[test]
    fn access_through_loaded_register_translates() {
        let regs = SegmentRegisterFile::flat_user();
        assert_eq!(
            access_through(regs.register(DataSegReg::Ds), 0x1234),
            Ok(0x1234)
        );
    }

    #[test]
    fn outward_return_clears_nonzero_null_marker() {
        let mut regs = SegmentRegisterFile::flat_user();
        regs.load_null(DataSegReg::Gs, Selector::from_bits(0x1));
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        assert!(fp.cleared_as_null(DataSegReg::Gs));
        assert!(regs.selector(DataSegReg::Gs).is_zero());
    }

    #[test]
    fn same_level_return_is_a_noop() {
        let mut regs = SegmentRegisterFile::flat_user();
        regs.load_null(DataSegReg::Gs, Selector::from_bits(0x2));
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring0, PrivilegeLevel::Ring0);
        assert!(fp.is_empty());
        assert_eq!(regs.selector(DataSegReg::Gs).bits(), 0x2);
    }

    #[test]
    fn outward_return_scrubs_kernel_cached_registers() {
        let mut regs = SegmentRegisterFile::flat_user();
        // Simulate the kernel having loaded its own data segment in DS.
        let kd = tables()
            .lookup(DescriptorTables::kernel_data_selector())
            .unwrap();
        *regs.register_mut(DataSegReg::Ds) =
            SegmentRegister::loaded(DescriptorTables::kernel_data_selector(), kd);
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        assert!(fp.cleared_as_sensitive(DataSegReg::Ds));
        assert!(regs.selector(DataSegReg::Ds).is_zero());
    }

    #[test]
    fn outward_return_preserves_user_segments() {
        let mut regs = SegmentRegisterFile::flat_user();
        let before_ds = regs.selector(DataSegReg::Ds);
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        // DS/ES/FS hold DPL3 user data: untouched. GS held selector 0 (null,
        // already zero): cleared but with no *observable* change.
        assert_eq!(regs.selector(DataSegReg::Ds), before_ds);
        assert!(!fp.cleared_as_null(DataSegReg::Ds));
        assert!(
            !fp.cleared_as_null(DataSegReg::Gs),
            "zero selector has no footprint"
        );
    }

    #[test]
    fn zero_selector_clear_is_unobservable() {
        // Footprint only counts clears that change the visible value:
        // parking 0x0 in GS yields no signal, which is exactly why SegScope
        // must use 0x1..=0x3.
        let mut regs = SegmentRegisterFile::flat_user();
        regs.load_null(DataSegReg::Gs, Selector::NULL);
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        assert!(!fp.was_cleared(DataSegReg::Gs));
    }

    #[test]
    fn footprint_counts() {
        let mut regs = SegmentRegisterFile::flat_user();
        regs.load_null(DataSegReg::Es, Selector::from_bits(0x3));
        regs.load_null(DataSegReg::Gs, Selector::from_bits(0x1));
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        assert_eq!(fp.cleared_count(), 2);
        assert!(!fp.is_empty());
    }
}
