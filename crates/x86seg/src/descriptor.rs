//! Segment descriptors: the protection parameters cached in the hidden part
//! of a segment register.

use crate::selector::PrivilegeLevel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a segment descriptor, as far as the data-segment protection
/// checks care.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DescriptorKind {
    /// An ordinary data segment.
    Data {
        /// Whether writes through the segment are permitted.
        writable: bool,
        /// Whether the limit grows downward (stack-style segments).
        expand_down: bool,
    },
    /// A code segment. Conforming code segments are readable from less
    /// privileged code and are therefore *not* "sensitive" for the
    /// privilege-return clearing check.
    Code {
        /// Whether data reads through the segment are permitted.
        readable: bool,
        /// Whether the segment is conforming (callable from outer rings
        /// without a privilege-level change).
        conforming: bool,
    },
    /// A system descriptor (TSS, LDT pointer, gates). Never loadable into a
    /// data-segment register.
    System,
}

impl DescriptorKind {
    /// A plain read/write data segment — the common case for DS/ES/GS.
    #[must_use]
    pub fn plain_data() -> Self {
        DescriptorKind::Data {
            writable: true,
            expand_down: false,
        }
    }

    /// Returns `true` if a data-segment register may hold this descriptor.
    #[must_use]
    pub fn loadable_into_data_register(self) -> bool {
        match self {
            DescriptorKind::Data { .. } => true,
            DescriptorKind::Code { readable, .. } => readable,
            DescriptorKind::System => false,
        }
    }

    /// Returns `true` if the descriptor is *sensitive* in the sense of the
    /// paper's Algorithm 1: it protects higher-privileged content, so a
    /// register caching it must be scrubbed when control returns to an
    /// outer privilege level.
    ///
    /// On real hardware this is "data or non-conforming code": conforming
    /// code segments are intentionally accessible across rings.
    #[must_use]
    pub fn is_sensitive(self) -> bool {
        match self {
            DescriptorKind::Data { .. } => true,
            DescriptorKind::Code { conforming, .. } => !conforming,
            DescriptorKind::System => true,
        }
    }
}

/// A segment descriptor: base, limit, privilege, and type.
///
/// This is the protection state that the CPU caches into the hidden part of
/// a segment register on a successful load, so that subsequent accesses do
/// not have to re-read the GDT/LDT.
///
/// ```
/// use x86seg::{SegmentDescriptor, PrivilegeLevel};
/// let user_data = SegmentDescriptor::flat_data(PrivilegeLevel::Ring3);
/// assert!(user_data.contains(0));
/// assert!(user_data.contains(u32::MAX as u64));
/// assert!(!user_data.contains(1 << 40));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentDescriptor {
    base: u64,
    limit: u64,
    dpl: PrivilegeLevel,
    kind: DescriptorKind,
    present: bool,
}

impl SegmentDescriptor {
    /// Creates a descriptor with explicit fields.
    #[must_use]
    pub fn new(base: u64, limit: u64, dpl: PrivilegeLevel, kind: DescriptorKind) -> Self {
        SegmentDescriptor {
            base,
            limit,
            dpl,
            kind,
            present: true,
        }
    }

    /// A flat 4 GiB read/write data segment at the given privilege level —
    /// the descriptor shape used by every modern flat-memory-model OS.
    #[must_use]
    pub fn flat_data(dpl: PrivilegeLevel) -> Self {
        SegmentDescriptor::new(0, u64::from(u32::MAX), dpl, DescriptorKind::plain_data())
    }

    /// A flat 4 GiB code segment at the given privilege level.
    #[must_use]
    pub fn flat_code(dpl: PrivilegeLevel) -> Self {
        SegmentDescriptor::new(
            0,
            u64::from(u32::MAX),
            dpl,
            DescriptorKind::Code {
                readable: true,
                conforming: false,
            },
        )
    }

    /// Marks the descriptor not-present (loads fault with `#NP`).
    #[must_use]
    pub fn not_present(mut self) -> Self {
        self.present = false;
        self
    }

    /// The linear base address of the segment.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The segment limit (highest valid offset for expand-up segments).
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The descriptor privilege level.
    #[must_use]
    pub fn dpl(&self) -> PrivilegeLevel {
        self.dpl
    }

    /// The descriptor type class.
    #[must_use]
    pub fn kind(&self) -> DescriptorKind {
        self.kind
    }

    /// Whether the segment is present in memory.
    #[must_use]
    pub fn is_present(&self) -> bool {
        self.present
    }

    /// Returns `true` if `offset` lies within the segment limit.
    #[must_use]
    pub fn contains(&self, offset: u64) -> bool {
        match self.kind {
            DescriptorKind::Data {
                expand_down: true, ..
            } => offset > self.limit,
            _ => offset <= self.limit,
        }
    }

    /// Translates a segment-relative offset to a linear address, or `None`
    /// if the offset violates the limit check.
    #[must_use]
    pub fn translate(&self, offset: u64) -> Option<u64> {
        if self.contains(offset) {
            Some(self.base.wrapping_add(offset))
        } else {
            None
        }
    }

    /// See [`DescriptorKind::is_sensitive`].
    #[must_use]
    pub fn is_sensitive(&self) -> bool {
        self.kind.is_sensitive()
    }
}

impl fmt::Display for SegmentDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seg[base={:#x}, limit={:#x}, dpl={}, {:?}{}]",
            self.base,
            self.limit,
            self.dpl.bits(),
            self.kind,
            if self.present { "" } else { ", not-present" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_data_spans_4gib() {
        let d = SegmentDescriptor::flat_data(PrivilegeLevel::Ring3);
        assert!(d.contains(0));
        assert!(d.contains(u64::from(u32::MAX)));
        assert!(!d.contains(u64::from(u32::MAX) + 1));
        assert_eq!(d.translate(0x1000), Some(0x1000));
    }

    #[test]
    fn expand_down_inverts_limit_check() {
        let d = SegmentDescriptor::new(
            0,
            0xffff,
            PrivilegeLevel::Ring0,
            DescriptorKind::Data {
                writable: true,
                expand_down: true,
            },
        );
        assert!(!d.contains(0));
        assert!(!d.contains(0xffff));
        assert!(d.contains(0x1_0000));
    }

    #[test]
    fn translate_applies_base() {
        let d = SegmentDescriptor::new(
            0x8000,
            0xfff,
            PrivilegeLevel::Ring3,
            DescriptorKind::plain_data(),
        );
        assert_eq!(d.translate(0x10), Some(0x8010));
        assert_eq!(d.translate(0x1000), None);
    }

    #[test]
    fn sensitivity_classification() {
        assert!(DescriptorKind::plain_data().is_sensitive());
        assert!(DescriptorKind::Code {
            readable: true,
            conforming: false
        }
        .is_sensitive());
        assert!(!DescriptorKind::Code {
            readable: true,
            conforming: true
        }
        .is_sensitive());
        assert!(DescriptorKind::System.is_sensitive());
    }

    #[test]
    fn loadability_into_data_registers() {
        assert!(DescriptorKind::plain_data().loadable_into_data_register());
        assert!(DescriptorKind::Code {
            readable: true,
            conforming: false
        }
        .loadable_into_data_register());
        assert!(!DescriptorKind::Code {
            readable: false,
            conforming: false
        }
        .loadable_into_data_register());
        assert!(!DescriptorKind::System.loadable_into_data_register());
    }

    #[test]
    fn not_present_builder() {
        let d = SegmentDescriptor::flat_data(PrivilegeLevel::Ring0).not_present();
        assert!(!d.is_present());
    }
}
