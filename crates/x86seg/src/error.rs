//! Segmentation faults and protection errors.

use crate::selector::{PrivilegeLevel, Selector};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised by the segmentation protection checks.
///
/// These correspond to the hardware exceptions (`#GP`, `#NP`) that a real
/// x86 CPU would raise; the simulator surfaces them as values so guest code
/// (and tests) can observe them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegError {
    /// `#GP`: the selector's index exceeds the descriptor-table limit.
    IndexOutOfRange {
        /// The offending selector.
        selector: Selector,
        /// Number of entries in the targeted table.
        table_len: u16,
    },
    /// `#GP`: the table entry is empty (never initialized by the OS).
    EmptyDescriptor {
        /// The offending selector.
        selector: Selector,
    },
    /// `#GP`: descriptor type cannot be loaded into a data-segment register.
    NotLoadable {
        /// The offending selector.
        selector: Selector,
    },
    /// `#GP`: the CPL/RPL-vs-DPL check of paper Fig. 1 failed.
    PrivilegeViolation {
        /// Current privilege level of the executing code.
        cpl: PrivilegeLevel,
        /// Requested privilege level from the selector.
        rpl: PrivilegeLevel,
        /// Descriptor privilege level of the target segment.
        dpl: PrivilegeLevel,
    },
    /// `#NP`: the descriptor is marked not-present.
    NotPresent {
        /// The offending selector.
        selector: Selector,
    },
    /// `#GP`: a memory access was attempted through a register holding a
    /// null selector (this is the fault the null-selector convention is
    /// designed to guarantee).
    NullSegmentAccess,
    /// `#GP`: the access offset violated the segment limit.
    LimitViolation {
        /// The faulting segment-relative offset.
        offset: u64,
        /// The segment limit that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for SegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegError::IndexOutOfRange {
                selector,
                table_len,
            } => write!(
                f,
                "selector {selector} indexes past descriptor table of {table_len} entries"
            ),
            SegError::EmptyDescriptor { selector } => {
                write!(f, "selector {selector} refers to an empty descriptor slot")
            }
            SegError::NotLoadable { selector } => write!(
                f,
                "selector {selector} refers to a descriptor not loadable into a data register"
            ),
            SegError::PrivilegeViolation { cpl, rpl, dpl } => write!(
                f,
                "privilege violation: cpl={cpl}, rpl={rpl} may not access dpl={dpl} segment"
            ),
            SegError::NotPresent { selector } => {
                write!(f, "selector {selector} refers to a not-present segment")
            }
            SegError::NullSegmentAccess => {
                write!(f, "memory access through a null segment selector")
            }
            SegError::LimitViolation { offset, limit } => {
                write!(f, "offset {offset:#x} exceeds segment limit {limit:#x}")
            }
        }
    }
}

impl Error for SegError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = SegError::PrivilegeViolation {
            cpl: PrivilegeLevel::Ring3,
            rpl: PrivilegeLevel::Ring3,
            dpl: PrivilegeLevel::Ring0,
        };
        let text = e.to_string();
        assert!(text.contains("cpl=ring3"));
        assert!(text.contains("dpl=ring0"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SegError>();
    }
}
