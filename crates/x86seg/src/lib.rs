//! x86 segmentation semantics for the SegScope reproduction.
//!
//! This crate models the architectural machinery that the SegScope technique
//! (HPCA 2024) abuses: segment *selectors*, segment *descriptors* stored in
//! the GDT/LDT, the per-register *descriptor cache* (hidden part), the
//! data-segment privilege check (paper Fig. 1), and — crucially — the
//! selector-clearing rule applied on every return to an outer privilege
//! level (paper Algorithm 1, [`protected_mode_return`]).
//!
//! The key architectural subtlety reproduced here is that the *null segment
//! selector* is not a single value: any selector whose 13-bit index is 0 and
//! whose table indicator selects the GDT is null, so `0x0000`–`0x0003` are
//! all null (they differ only in RPL bits). Loading such a selector into a
//! data-segment register raises no fault, but when the CPU IRETs from ring 0
//! back to ring 3 it resets the selector to exactly `0` — leaving the
//! architectural footprint SegScope observes.
//!
//! # Example
//!
//! ```
//! use x86seg::{Selector, SegmentRegisterFile, DataSegReg, PrivilegeLevel, protected_mode_return};
//!
//! let mut regs = SegmentRegisterFile::flat_user();
//! // Park a non-zero null selector in GS, as the SegScope probe does.
//! regs.load_null(DataSegReg::Gs, Selector::null_with_rpl(PrivilegeLevel::Ring1));
//! assert!(regs.selector(DataSegReg::Gs).is_null());
//! assert_ne!(regs.selector(DataSegReg::Gs).bits(), 0);
//!
//! // An interrupt fires; the kernel runs at ring 0 and then returns to ring 3.
//! let footprint = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
//! assert!(footprint.was_cleared(DataSegReg::Gs));
//! assert_eq!(regs.selector(DataSegReg::Gs).bits(), 0);
//! ```
//!
//! The crate is self-contained and deterministic; it performs no I/O and has
//! no unsafe code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod descriptor;
mod error;
mod regfile;
mod selector;
mod table;

pub use check::{
    access_through, data_access_allowed, load_data_segment, protected_mode_return, ReturnFootprint,
};
pub use descriptor::{DescriptorKind, SegmentDescriptor};
pub use error::SegError;
pub use regfile::{DataSegReg, SegmentRegister, SegmentRegisterFile};
pub use selector::{PrivilegeLevel, Selector, TableIndicator};
pub use table::{DescriptorTable, DescriptorTables};
