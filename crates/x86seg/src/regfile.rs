//! Segment registers: visible selector plus the hidden descriptor cache.

use crate::descriptor::SegmentDescriptor;
use crate::selector::{PrivilegeLevel, Selector};
use crate::table::DescriptorTables;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four data-segment registers checked by the privilege-return scrub of
/// paper Algorithm 1. (`CS` and `SS` are handled by separate rules and are
/// never cleared by this path.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataSegReg {
    /// DS — the default data segment.
    Ds,
    /// ES — the string-operation destination segment.
    Es,
    /// FS — used by glibc for thread-local storage on x86-64 Linux, which
    /// is why the paper's probe avoids it.
    Fs,
    /// GS — the register the SegScope probe parks its marker in.
    Gs,
}

impl DataSegReg {
    /// All four data-segment registers in the order Algorithm 1 visits them.
    pub const ALL: [DataSegReg; 4] = [
        DataSegReg::Ds,
        DataSegReg::Es,
        DataSegReg::Fs,
        DataSegReg::Gs,
    ];
}

impl fmt::Display for DataSegReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataSegReg::Ds => "ds",
            DataSegReg::Es => "es",
            DataSegReg::Fs => "fs",
            DataSegReg::Gs => "gs",
        })
    }
}

/// One segment register: the program-visible selector and the hidden
/// descriptor cache filled on a successful load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SegmentRegister {
    selector: Selector,
    cache: Option<SegmentDescriptor>,
}

impl SegmentRegister {
    /// A register holding the zero null selector with an empty cache.
    #[must_use]
    pub fn cleared() -> Self {
        SegmentRegister::default()
    }

    /// A register freshly loaded with `selector` caching `descriptor`.
    #[must_use]
    pub fn loaded(selector: Selector, descriptor: SegmentDescriptor) -> Self {
        SegmentRegister {
            selector,
            cache: Some(descriptor),
        }
    }

    /// A register holding a (possibly non-zero) null selector: no fault on
    /// load, no descriptor cached.
    #[must_use]
    pub fn null(selector: Selector) -> Self {
        debug_assert!(selector.is_null());
        SegmentRegister {
            selector,
            cache: None,
        }
    }

    /// The visible selector value (what a `mov r16, gs` instruction reads).
    #[must_use]
    pub fn selector(&self) -> Selector {
        self.selector
    }

    /// The hidden descriptor cache, if a descriptor has been loaded.
    #[must_use]
    pub fn descriptor_cache(&self) -> Option<&SegmentDescriptor> {
        self.cache.as_ref()
    }

    /// Hardware scrub: reset the visible selector to zero and drop the
    /// cached descriptor. This is the footprint-producing operation.
    pub fn clear(&mut self) {
        self.selector = Selector::NULL;
        self.cache = None;
    }
}

/// The full segment-register file of one logical CPU context.
///
/// Only the pieces relevant to the reproduced checks are modeled: the CS
/// register's RPL (which encodes the privilege level an `iret` returns to)
/// and the four data-segment registers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentRegisterFile {
    cs_rpl: PrivilegeLevel,
    ds: SegmentRegister,
    es: SegmentRegister,
    fs: SegmentRegister,
    gs: SegmentRegister,
}

impl SegmentRegisterFile {
    /// The register file of a freshly exec'd flat-model user process: CS.RPL
    /// is ring 3; DS/ES point at the flat user-data segment; FS carries the
    /// TLS segment (also user data here); GS is cleared — exactly the state
    /// a SegScope probe finds on Linux before planting its marker.
    #[must_use]
    pub fn flat_user() -> Self {
        let tables = DescriptorTables::linux_flat();
        let user_sel = DescriptorTables::user_data_selector();
        let user_desc = tables
            .lookup(user_sel)
            .expect("linux_flat always defines the user data segment");
        SegmentRegisterFile {
            cs_rpl: PrivilegeLevel::Ring3,
            ds: SegmentRegister::loaded(user_sel, user_desc),
            es: SegmentRegister::loaded(user_sel, user_desc),
            fs: SegmentRegister::loaded(user_sel, user_desc),
            gs: SegmentRegister::cleared(),
        }
    }

    /// The RPL field of CS: the privilege level of the code the context
    /// belongs to (ring 3 for a user process).
    #[must_use]
    pub fn cs_rpl(&self) -> PrivilegeLevel {
        self.cs_rpl
    }

    /// Sets the CS RPL (used when modeling kernel contexts).
    pub fn set_cs_rpl(&mut self, rpl: PrivilegeLevel) {
        self.cs_rpl = rpl;
    }

    /// Immutable access to one data-segment register.
    #[must_use]
    pub fn register(&self, reg: DataSegReg) -> &SegmentRegister {
        match reg {
            DataSegReg::Ds => &self.ds,
            DataSegReg::Es => &self.es,
            DataSegReg::Fs => &self.fs,
            DataSegReg::Gs => &self.gs,
        }
    }

    /// Mutable access to one data-segment register.
    pub fn register_mut(&mut self, reg: DataSegReg) -> &mut SegmentRegister {
        match reg {
            DataSegReg::Ds => &mut self.ds,
            DataSegReg::Es => &mut self.es,
            DataSegReg::Fs => &mut self.fs,
            DataSegReg::Gs => &mut self.gs,
        }
    }

    /// Shorthand for the visible selector of one register.
    #[must_use]
    pub fn selector(&self, reg: DataSegReg) -> Selector {
        self.register(reg).selector()
    }

    /// Loads a *null* selector (any of `0x0..=0x3`) into a register: never
    /// faults, clears the descriptor cache.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `selector` is not null; use
    /// [`crate::load_data_segment`] for general loads.
    pub fn load_null(&mut self, reg: DataSegReg, selector: Selector) {
        debug_assert!(selector.is_null(), "load_null requires a null selector");
        *self.register_mut(reg) = SegmentRegister::null(selector);
    }
}

impl Default for SegmentRegisterFile {
    fn default() -> Self {
        SegmentRegisterFile::flat_user()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_user_initial_state() {
        let regs = SegmentRegisterFile::flat_user();
        assert_eq!(regs.cs_rpl(), PrivilegeLevel::Ring3);
        assert!(!regs.selector(DataSegReg::Ds).is_null());
        assert!(!regs.selector(DataSegReg::Fs).is_null());
        assert!(regs.selector(DataSegReg::Gs).is_zero());
        assert!(regs.register(DataSegReg::Ds).descriptor_cache().is_some());
        assert!(regs.register(DataSegReg::Gs).descriptor_cache().is_none());
    }

    #[test]
    fn clear_resets_selector_and_cache() {
        let mut regs = SegmentRegisterFile::flat_user();
        regs.register_mut(DataSegReg::Ds).clear();
        assert!(regs.selector(DataSegReg::Ds).is_zero());
        assert!(regs.register(DataSegReg::Ds).descriptor_cache().is_none());
    }

    #[test]
    fn load_null_preserves_nonzero_value() {
        let mut regs = SegmentRegisterFile::flat_user();
        let marker = Selector::null_with_rpl(PrivilegeLevel::Ring3);
        regs.load_null(DataSegReg::Gs, marker);
        assert_eq!(regs.selector(DataSegReg::Gs), marker);
        assert_eq!(regs.selector(DataSegReg::Gs).bits(), 0x3);
    }

    #[test]
    fn register_access_is_per_register() {
        let mut regs = SegmentRegisterFile::flat_user();
        regs.load_null(
            DataSegReg::Gs,
            Selector::null_with_rpl(PrivilegeLevel::Ring1),
        );
        for reg in [DataSegReg::Ds, DataSegReg::Es, DataSegReg::Fs] {
            assert!(
                !regs.selector(reg).is_nonzero_null(),
                "{reg} unexpectedly touched"
            );
        }
        assert!(regs.selector(DataSegReg::Gs).is_nonzero_null());
    }

    #[test]
    fn data_seg_reg_display() {
        assert_eq!(DataSegReg::Gs.to_string(), "gs");
        assert_eq!(DataSegReg::ALL.len(), 4);
    }
}
