//! Segment selectors and privilege levels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An x86 privilege level (ring), `Ring0` being the most privileged.
///
/// Used for the Current Privilege Level (CPL), Requested Privilege Level
/// (RPL), and Descriptor Privilege Level (DPL). Ordering follows the
/// numeric encoding: `Ring0 < Ring3`, so "at least as privileged as" is
/// expressed with `<=` on the numeric level (smaller = more privileged).
///
/// ```
/// use x86seg::PrivilegeLevel;
/// assert!(PrivilegeLevel::Ring0 < PrivilegeLevel::Ring3);
/// assert_eq!(PrivilegeLevel::Ring2 as u8, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PrivilegeLevel {
    /// Ring 0: kernel / most privileged.
    Ring0 = 0,
    /// Ring 1: historically device drivers; unused by mainstream OSes.
    Ring1 = 1,
    /// Ring 2: historically device drivers; unused by mainstream OSes.
    Ring2 = 2,
    /// Ring 3: user mode / least privileged.
    Ring3 = 3,
}

impl PrivilegeLevel {
    /// All four privilege levels in ascending numeric order.
    pub const ALL: [PrivilegeLevel; 4] = [
        PrivilegeLevel::Ring0,
        PrivilegeLevel::Ring1,
        PrivilegeLevel::Ring2,
        PrivilegeLevel::Ring3,
    ];

    /// Constructs a privilege level from its 2-bit encoding.
    ///
    /// Only the low two bits are used, mirroring how hardware decodes the
    /// RPL field of a selector.
    #[must_use]
    pub fn from_bits_truncate(bits: u8) -> Self {
        match bits & 0b11 {
            0 => PrivilegeLevel::Ring0,
            1 => PrivilegeLevel::Ring1,
            2 => PrivilegeLevel::Ring2,
            _ => PrivilegeLevel::Ring3,
        }
    }

    /// Returns the 2-bit numeric encoding of the level.
    #[must_use]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Returns `true` if `self` is at least as privileged as `other`
    /// (i.e. numerically less than or equal).
    #[must_use]
    pub fn at_least_as_privileged_as(self, other: PrivilegeLevel) -> bool {
        self <= other
    }
}

impl Default for PrivilegeLevel {
    /// Defaults to user mode (`Ring3`), the level unprivileged code runs at.
    fn default() -> Self {
        PrivilegeLevel::Ring3
    }
}

impl fmt::Display for PrivilegeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring{}", self.bits())
    }
}

/// Which descriptor table a selector refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TableIndicator {
    /// Table Indicator bit clear: the Global Descriptor Table.
    #[default]
    Gdt,
    /// Table Indicator bit set: the Local Descriptor Table.
    Ldt,
}

impl TableIndicator {
    /// Decodes the TI bit (bit 2 of a selector).
    #[must_use]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            TableIndicator::Ldt
        } else {
            TableIndicator::Gdt
        }
    }

    /// Returns the TI bit value.
    #[must_use]
    pub fn bit(self) -> bool {
        matches!(self, TableIndicator::Ldt)
    }
}

/// A 16-bit segment selector: 13-bit table index, 1-bit table indicator,
/// 2-bit requested privilege level.
///
/// ```text
///  15                    3   2   1 0
/// +-----------------------+----+----+
/// |        index          | TI |RPL |
/// +-----------------------+----+----+
/// ```
///
/// A selector is *null* when it points at entry 0 of the GDT, regardless of
/// its RPL bits — so `0x0000`, `0x0001`, `0x0002` and `0x0003` are all null.
/// This is the property SegScope exploits: a **non-zero null** selector can
/// be loaded without faulting yet is architecturally reset to `0` when the
/// CPU returns to an outer privilege level.
///
/// ```
/// use x86seg::Selector;
/// for raw in 0u16..=3 {
///     assert!(Selector::from_bits(raw).is_null());
/// }
/// assert!(!Selector::from_bits(0x0004).is_null()); // GDT entry 1: not null
/// assert!(!Selector::from_bits(0x0007).is_null()); // LDT entry 0: not null
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Selector(u16);

impl Selector {
    /// The canonical zero null selector.
    pub const NULL: Selector = Selector(0);

    /// Constructs a selector from its fields.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 13 bits (>= 8192).
    #[must_use]
    pub fn new(index: u16, table: TableIndicator, rpl: PrivilegeLevel) -> Self {
        assert!(index < 8192, "selector index {index} out of 13-bit range");
        Selector((index << 3) | (u16::from(table.bit()) << 2) | u16::from(rpl.bits()))
    }

    /// Reinterprets raw bits as a selector (always valid: every 16-bit
    /// pattern is a structurally well-formed selector).
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        Selector(bits)
    }

    /// A null selector carrying the given RPL in its low bits.
    ///
    /// `null_with_rpl(Ring0)` is the zero selector; the other three are the
    /// non-zero null values (`0x1`, `0x2`, `0x3`) used by the SegScope probe.
    #[must_use]
    pub fn null_with_rpl(rpl: PrivilegeLevel) -> Self {
        Selector(u16::from(rpl.bits()))
    }

    /// Returns the raw 16-bit encoding.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Returns the 13-bit descriptor-table index.
    #[must_use]
    pub fn index(self) -> u16 {
        self.0 >> 3
    }

    /// Returns which descriptor table the selector refers to.
    #[must_use]
    pub fn table(self) -> TableIndicator {
        TableIndicator::from_bit(self.0 & 0b100 != 0)
    }

    /// Returns the requested privilege level encoded in the low two bits.
    #[must_use]
    pub fn rpl(self) -> PrivilegeLevel {
        PrivilegeLevel::from_bits_truncate(self.0 as u8)
    }

    /// Returns a copy of the selector with its RPL replaced.
    #[must_use]
    pub fn with_rpl(self, rpl: PrivilegeLevel) -> Self {
        Selector((self.0 & !0b11) | u16::from(rpl.bits()))
    }

    /// Returns `true` if this selector is a *null segment selector*:
    /// index 0 in the GDT, any RPL. Values `0x0000..=0x0003`.
    #[inline]
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 & !0b11 == 0
    }

    /// Returns `true` if this is the all-zero selector (what the hardware
    /// writes back when clearing a register on privilege-level return).
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this selector is null but not zero — the exact
    /// family of values (`0x1`, `0x2`, `0x3`) a SegScope probe parks in a
    /// data-segment register so the kernel-return clear is observable.
    #[inline]
    #[must_use]
    pub fn is_nonzero_null(self) -> bool {
        self.is_null() && !self.is_zero()
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#06x} (idx={}, {}, rpl={})",
            self.0,
            self.index(),
            match self.table() {
                TableIndicator::Gdt => "gdt",
                TableIndicator::Ldt => "ldt",
            },
            self.rpl().bits()
        )
    }
}

impl fmt::LowerHex for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<Selector> for u16 {
    fn from(sel: Selector) -> u16 {
        sel.bits()
    }
}

impl From<u16> for Selector {
    fn from(bits: u16) -> Selector {
        Selector::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_ordering_matches_numeric_levels() {
        assert!(PrivilegeLevel::Ring0 < PrivilegeLevel::Ring1);
        assert!(PrivilegeLevel::Ring1 < PrivilegeLevel::Ring2);
        assert!(PrivilegeLevel::Ring2 < PrivilegeLevel::Ring3);
        assert!(PrivilegeLevel::Ring0.at_least_as_privileged_as(PrivilegeLevel::Ring3));
        assert!(!PrivilegeLevel::Ring3.at_least_as_privileged_as(PrivilegeLevel::Ring0));
        assert!(PrivilegeLevel::Ring2.at_least_as_privileged_as(PrivilegeLevel::Ring2));
    }

    #[test]
    fn privilege_from_bits_truncates_to_two_bits() {
        assert_eq!(PrivilegeLevel::from_bits_truncate(0), PrivilegeLevel::Ring0);
        assert_eq!(PrivilegeLevel::from_bits_truncate(3), PrivilegeLevel::Ring3);
        assert_eq!(PrivilegeLevel::from_bits_truncate(4), PrivilegeLevel::Ring0);
        assert_eq!(
            PrivilegeLevel::from_bits_truncate(0xff),
            PrivilegeLevel::Ring3
        );
    }

    #[test]
    fn selector_field_round_trip() {
        let sel = Selector::new(42, TableIndicator::Ldt, PrivilegeLevel::Ring3);
        assert_eq!(sel.index(), 42);
        assert_eq!(sel.table(), TableIndicator::Ldt);
        assert_eq!(sel.rpl(), PrivilegeLevel::Ring3);
        assert_eq!(sel.bits(), (42 << 3) | 0b100 | 0b11);
    }

    #[test]
    #[should_panic(expected = "out of 13-bit range")]
    fn selector_index_overflow_panics() {
        let _ = Selector::new(8192, TableIndicator::Gdt, PrivilegeLevel::Ring0);
    }

    #[test]
    fn exactly_the_four_low_values_are_null() {
        for raw in 0u16..=0xff {
            let sel = Selector::from_bits(raw);
            assert_eq!(sel.is_null(), raw <= 3, "selector {raw:#06x}");
        }
    }

    #[test]
    fn ldt_entry_zero_is_not_null() {
        // TI=1, index=0: structurally points at LDT entry 0, which is NOT
        // the architectural null selector.
        let sel = Selector::new(0, TableIndicator::Ldt, PrivilegeLevel::Ring0);
        assert!(!sel.is_null());
    }

    #[test]
    fn nonzero_null_family() {
        assert!(!Selector::NULL.is_nonzero_null());
        for rpl in [
            PrivilegeLevel::Ring1,
            PrivilegeLevel::Ring2,
            PrivilegeLevel::Ring3,
        ] {
            let sel = Selector::null_with_rpl(rpl);
            assert!(sel.is_nonzero_null());
            assert!(sel.is_null());
            assert_eq!(sel.rpl(), rpl);
        }
    }

    #[test]
    fn with_rpl_only_touches_low_bits() {
        let sel = Selector::new(7, TableIndicator::Gdt, PrivilegeLevel::Ring0);
        let re = sel.with_rpl(PrivilegeLevel::Ring3);
        assert_eq!(re.index(), 7);
        assert_eq!(re.table(), TableIndicator::Gdt);
        assert_eq!(re.rpl(), PrivilegeLevel::Ring3);
    }

    #[test]
    fn display_is_informative() {
        let sel = Selector::new(2, TableIndicator::Gdt, PrivilegeLevel::Ring3);
        let text = sel.to_string();
        assert!(text.contains("idx=2"));
        assert!(text.contains("rpl=3"));
    }

    #[test]
    fn conversions_round_trip() {
        let sel: Selector = 0x002bu16.into();
        let raw: u16 = sel.into();
        assert_eq!(raw, 0x002b);
    }
}
