//! Descriptor tables (GDT/LDT).

use crate::descriptor::SegmentDescriptor;
use crate::error::SegError;
use crate::selector::{PrivilegeLevel, Selector, TableIndicator};
use serde::{Deserialize, Serialize};

/// A descriptor table: an indexed array of optional segment descriptors.
///
/// For the GDT, entry 0 is architecturally reserved: the CPU never reads a
/// descriptor through a null selector, so the slot is left empty and
/// [`DescriptorTable::lookup`] is never consulted for it (callers detect
/// null selectors first).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DescriptorTable {
    entries: Vec<Option<SegmentDescriptor>>,
}

impl DescriptorTable {
    /// Creates an empty table with `len` slots.
    #[must_use]
    pub fn with_len(len: u16) -> Self {
        DescriptorTable {
            entries: vec![None; usize::from(len)],
        }
    }

    /// Number of slots in the table.
    #[must_use]
    pub fn len(&self) -> u16 {
        self.entries.len() as u16
    }

    /// Returns `true` if the table has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs a descriptor at `index`, growing the table if needed.
    /// Returns the previously installed descriptor, if any.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8192` (beyond what any selector can address).
    pub fn install(
        &mut self,
        index: u16,
        descriptor: SegmentDescriptor,
    ) -> Option<SegmentDescriptor> {
        assert!(index < 8192, "descriptor index {index} out of range");
        let idx = usize::from(index);
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        self.entries[idx].replace(descriptor)
    }

    /// Removes the descriptor at `index`, returning it if one was present.
    pub fn remove(&mut self, index: u16) -> Option<SegmentDescriptor> {
        self.entries
            .get_mut(usize::from(index))
            .and_then(Option::take)
    }

    /// Reads the descriptor a selector points at, performing the index and
    /// emptiness checks a hardware descriptor fetch performs.
    ///
    /// # Errors
    ///
    /// [`SegError::IndexOutOfRange`] if the selector indexes past the table,
    /// [`SegError::EmptyDescriptor`] if the slot holds no descriptor.
    pub fn lookup(&self, selector: Selector) -> Result<SegmentDescriptor, SegError> {
        let idx = usize::from(selector.index());
        match self.entries.get(idx) {
            None => Err(SegError::IndexOutOfRange {
                selector,
                table_len: self.len(),
            }),
            Some(None) => Err(SegError::EmptyDescriptor { selector }),
            Some(Some(descriptor)) => Ok(*descriptor),
        }
    }
}

/// The pair of descriptor tables visible to one CPU context: the system GDT
/// and the per-process LDT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DescriptorTables {
    /// The Global Descriptor Table.
    pub gdt: DescriptorTable,
    /// The Local Descriptor Table (often empty on modern systems).
    pub ldt: DescriptorTable,
}

impl DescriptorTables {
    /// Builds the descriptor-table layout Linux uses on x86: flat kernel
    /// code/data at ring 0 and flat user code/data at ring 3.
    ///
    /// Index assignments (loosely mirroring Linux's `GDT_ENTRY_*`):
    ///
    /// | index | descriptor        |
    /// |-------|-------------------|
    /// | 0     | (reserved null)   |
    /// | 1     | kernel code, DPL0 |
    /// | 2     | kernel data, DPL0 |
    /// | 3     | user code, DPL3   |
    /// | 4     | user data, DPL3   |
    #[must_use]
    pub fn linux_flat() -> Self {
        let mut gdt = DescriptorTable::with_len(8);
        gdt.install(1, SegmentDescriptor::flat_code(PrivilegeLevel::Ring0));
        gdt.install(2, SegmentDescriptor::flat_data(PrivilegeLevel::Ring0));
        gdt.install(3, SegmentDescriptor::flat_code(PrivilegeLevel::Ring3));
        gdt.install(4, SegmentDescriptor::flat_data(PrivilegeLevel::Ring3));
        DescriptorTables {
            gdt,
            ldt: DescriptorTable::default(),
        }
    }

    /// The user-data selector for the [`linux_flat`](Self::linux_flat)
    /// layout (index 4, RPL 3).
    #[must_use]
    pub fn user_data_selector() -> Selector {
        Selector::new(4, TableIndicator::Gdt, PrivilegeLevel::Ring3)
    }

    /// The kernel-data selector for the [`linux_flat`](Self::linux_flat)
    /// layout (index 2, RPL 0).
    #[must_use]
    pub fn kernel_data_selector() -> Selector {
        Selector::new(2, TableIndicator::Gdt, PrivilegeLevel::Ring0)
    }

    /// Resolves a selector through the table its TI bit picks.
    ///
    /// # Errors
    ///
    /// Propagates the [`DescriptorTable::lookup`] errors of the chosen table.
    pub fn lookup(&self, selector: Selector) -> Result<SegmentDescriptor, SegError> {
        match selector.table() {
            TableIndicator::Gdt => self.gdt.lookup(selector),
            TableIndicator::Ldt => self.ldt.lookup(selector),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_reports_out_of_range() {
        let table = DescriptorTable::with_len(4);
        let sel = Selector::new(9, TableIndicator::Gdt, PrivilegeLevel::Ring3);
        assert_eq!(
            table.lookup(sel),
            Err(SegError::IndexOutOfRange {
                selector: sel,
                table_len: 4
            })
        );
    }

    #[test]
    fn lookup_reports_empty_slot() {
        let table = DescriptorTable::with_len(4);
        let sel = Selector::new(2, TableIndicator::Gdt, PrivilegeLevel::Ring3);
        assert_eq!(
            table.lookup(sel),
            Err(SegError::EmptyDescriptor { selector: sel })
        );
    }

    #[test]
    fn install_grows_and_replaces() {
        let mut table = DescriptorTable::default();
        assert!(table.is_empty());
        let d0 = SegmentDescriptor::flat_data(PrivilegeLevel::Ring3);
        assert_eq!(table.install(5, d0), None);
        assert_eq!(table.len(), 6);
        let d1 = SegmentDescriptor::flat_data(PrivilegeLevel::Ring0);
        assert_eq!(table.install(5, d1), Some(d0));
        let sel = Selector::new(5, TableIndicator::Gdt, PrivilegeLevel::Ring0);
        assert_eq!(table.lookup(sel), Ok(d1));
    }

    #[test]
    fn remove_empties_slot() {
        let mut table = DescriptorTable::with_len(4);
        table.install(1, SegmentDescriptor::flat_data(PrivilegeLevel::Ring3));
        assert!(table.remove(1).is_some());
        assert!(table.remove(1).is_none());
        let sel = Selector::new(1, TableIndicator::Gdt, PrivilegeLevel::Ring3);
        assert!(table.lookup(sel).is_err());
    }

    #[test]
    fn linux_flat_layout_resolves_user_and_kernel_data() {
        let tables = DescriptorTables::linux_flat();
        let user = tables
            .lookup(DescriptorTables::user_data_selector())
            .unwrap();
        assert_eq!(user.dpl(), PrivilegeLevel::Ring3);
        let kernel = tables
            .lookup(DescriptorTables::kernel_data_selector())
            .unwrap();
        assert_eq!(kernel.dpl(), PrivilegeLevel::Ring0);
    }

    #[test]
    fn ti_bit_selects_table() {
        let mut tables = DescriptorTables::linux_flat();
        tables
            .ldt
            .install(1, SegmentDescriptor::flat_data(PrivilegeLevel::Ring3));
        let ldt_sel = Selector::new(1, TableIndicator::Ldt, PrivilegeLevel::Ring3);
        let gdt_sel = Selector::new(1, TableIndicator::Gdt, PrivilegeLevel::Ring3);
        assert_eq!(tables.lookup(ldt_sel).unwrap().dpl(), PrivilegeLevel::Ring3);
        assert_eq!(tables.lookup(gdt_sel).unwrap().dpl(), PrivilegeLevel::Ring0);
    }
}
