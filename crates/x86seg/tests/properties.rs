//! Property-based tests for the segmentation invariants SegScope relies on.

use proptest::prelude::*;
use x86seg::{
    data_access_allowed, load_data_segment, protected_mode_return, DataSegReg, DescriptorTables,
    PrivilegeLevel, SegmentRegisterFile, Selector,
};

fn any_level() -> impl Strategy<Value = PrivilegeLevel> {
    (0u8..4).prop_map(PrivilegeLevel::from_bits_truncate)
}

proptest! {
    /// Exactly the raw values 0..=3 are null selectors.
    #[test]
    fn null_iff_low_two_bits_only(raw in any::<u16>()) {
        let sel = Selector::from_bits(raw);
        prop_assert_eq!(sel.is_null(), raw & !0b11 == 0);
    }

    /// Selector field extraction round-trips through construction.
    #[test]
    fn selector_round_trip(index in 0u16..8192, ti in any::<bool>(), rpl in any_level()) {
        let table = x86seg::TableIndicator::from_bit(ti);
        let sel = Selector::new(index, table, rpl);
        prop_assert_eq!(sel.index(), index);
        prop_assert_eq!(sel.table(), table);
        prop_assert_eq!(sel.rpl(), rpl);
    }

    /// Fig. 1: access allowed iff max(cpl, rpl) <= dpl, and monotone in dpl.
    #[test]
    fn access_rule_is_max_rule(cpl in any_level(), rpl in any_level(), dpl in any_level()) {
        let allowed = data_access_allowed(cpl, rpl, dpl);
        prop_assert_eq!(allowed, cpl.max(rpl) <= dpl);
    }

    /// Loading any null selector never faults and caches nothing.
    #[test]
    fn null_load_is_silent(raw in 0u16..4, cpl in any_level()) {
        let mut regs = SegmentRegisterFile::flat_user();
        let tables = DescriptorTables::linux_flat();
        let sel = Selector::from_bits(raw);
        prop_assert!(load_data_segment(&mut regs, DataSegReg::Gs, sel, &tables, cpl).is_ok());
        prop_assert_eq!(regs.selector(DataSegReg::Gs), sel);
        prop_assert!(regs.register(DataSegReg::Gs).descriptor_cache().is_none());
    }

    /// After an outward return, no register ever holds a non-zero null
    /// selector: the footprint is guaranteed.
    #[test]
    fn outward_return_leaves_no_nonzero_null(
        marker in 0u16..4,
        reg_pick in 0usize..4,
    ) {
        let mut regs = SegmentRegisterFile::flat_user();
        let reg = DataSegReg::ALL[reg_pick];
        regs.load_null(reg, Selector::from_bits(marker));
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        for r in DataSegReg::ALL {
            prop_assert!(!regs.selector(r).is_nonzero_null(), "{} kept a marker", r);
        }
        // Footprint observed iff the marker was non-zero.
        prop_assert_eq!(fp.cleared_as_null(reg), marker != 0);
    }

    /// Inward or same-level transitions never change any selector.
    #[test]
    fn non_outward_return_is_identity(
        marker in 0u16..4,
        cpl_bits in 0u8..4,
        rpl_bits in 0u8..4,
    ) {
        let cpl = PrivilegeLevel::from_bits_truncate(cpl_bits);
        let rpl = PrivilegeLevel::from_bits_truncate(rpl_bits);
        prop_assume!(rpl <= cpl); // not an outward transition
        let mut regs = SegmentRegisterFile::flat_user();
        regs.load_null(DataSegReg::Gs, Selector::from_bits(marker));
        let before = regs.clone();
        let fp = protected_mode_return(&mut regs, rpl, cpl);
        prop_assert!(fp.is_empty());
        prop_assert_eq!(regs, before);
    }

    /// The scrub is idempotent: a second outward return adds no footprint.
    #[test]
    fn scrub_is_idempotent(marker in 1u16..4) {
        let mut regs = SegmentRegisterFile::flat_user();
        regs.load_null(DataSegReg::Gs, Selector::from_bits(marker));
        let first = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        prop_assert!(first.cleared_as_null(DataSegReg::Gs));
        let second = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        prop_assert!(!second.was_cleared(DataSegReg::Gs));
    }
}
