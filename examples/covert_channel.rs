//! A timer-free cross-core covert channel built on SegScope (extension
//! from the paper's Discussion section): a sender modulates power draw,
//! the receiver decodes frequency changes from SegCnt.
//!
//! ```sh
//! cargo run --release --example covert_channel
//! ```

use segscope_repro::attacks::covert::{
    bits_to_bytes, bytes_to_bits, transmit, transmit_reliable, CovertConfig,
};

fn main() {
    println!("== SegScope covert channel ==");
    let payload = b"HELLO FROM CORE 3";
    let bits = bytes_to_bits(payload);
    println!(
        "payload: {:?} ({} bits)\n",
        String::from_utf8_lossy(payload),
        bits.len()
    );

    for (label, config) in [
        ("slow (20 ms slots)", CovertConfig::slow()),
        ("fast (8 ms slots)", CovertConfig::fast()),
    ] {
        let result = transmit(&config, &bits, 0xC0DE);
        let decoded = bits_to_bytes(&result.decoded);
        println!("{label}:");
        println!(
            "  raw rate {:.0} bit/s, goodput {:.0} bit/s",
            config.raw_bps(),
            result.goodput_bps
        );
        println!(
            "  bit errors {} / {} ({:.2}%)",
            result.errors,
            bits.len(),
            result.error_rate * 100.0
        );
        println!("  decoded: {:?}\n", String::from_utf8_lossy(&decoded));
    }

    // The residual errors vanish under a 3x repetition code.
    let reliable = transmit_reliable(&CovertConfig::slow(), &bits, 3, 0xC0DF);
    println!("slow + 3x repetition code:");
    println!(
        "  goodput {:.0} bit/s, errors {} -> decoded: {:?}",
        reliable.goodput_bps,
        reliable.errors,
        String::from_utf8_lossy(&bits_to_bytes(&reliable.decoded))
    );
}
