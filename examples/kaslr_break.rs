//! Break KASLR with the SegScope-based timer (paper Section IV-E): scan
//! candidate kernel base slots via prefetch probing, rank slow→fast
//! transitions, and recover the randomized base.
//!
//! ```sh
//! cargo run --release --example kaslr_break
//! ```

use segscope_repro::attacks::kaslr::{break_kaslr_fresh, KaslrConfig, ProbeMethod, TimerKind};
use segscope_repro::segscope::Denoise;
use segscope_repro::segsim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Breaking KASLR with the SegScope timer ==");
    let machine_cfg = MachineConfig::xiaomi_air13().with_cr4_tsd(true);
    println!(
        "machine: {} (CR4.TSD set: rdtsc/rdpru are UNAVAILABLE)",
        machine_cfg.name
    );

    for (label, config) in [
        (
            "prefetch method, C=1",
            KaslrConfig {
                c: 1,
                ..KaslrConfig::paper_default()
            },
        ),
        ("prefetch method, C=5", KaslrConfig::paper_default()),
        (
            "access method, C=5",
            KaslrConfig {
                method: ProbeMethod::Access,
                ..KaslrConfig::paper_default()
            },
        ),
    ] {
        let result = break_kaslr_fresh(machine_cfg.clone(), &config, 0xA51A)?;
        println!(
            "\n{label}: scanned {} slots in {:.2} simulated seconds",
            config.slots, result.elapsed_s
        );
        println!(
            "secret slot {} -> predicted {} ({}), top-5 {:?} {}",
            result.secret_slot,
            result.ranking[0],
            if result.top1_hit() { "HIT" } else { "miss" },
            &result.ranking[..5],
            if result.top_n_hit(5) {
                "(contains secret)"
            } else {
                "(secret missed)"
            },
        );
    }

    // For contrast: the timer the threat model forbids.
    println!("\nfor contrast, rdtsc on an unrestricted machine:");
    let config = KaslrConfig {
        timer: TimerKind::HighRes,
        c: 3, // median-of-3 absorbs the odd mid-measurement interrupt
        ..KaslrConfig::paper_default()
    };
    let result = break_kaslr_fresh(MachineConfig::xiaomi_air13(), &config, 0xA51B)?;
    println!(
        "secret {} -> predicted {} in {:.2}s ({})",
        result.secret_slot,
        result.ranking[0],
        result.elapsed_s,
        if result.top1_hit() { "HIT" } else { "miss" }
    );
    let _ = Denoise::ZScore; // re-export sanity
    Ok(())
}
