//! Keystroke monitoring with SegScope (extension from the paper's
//! Discussion section): recover inter-keystroke timing without any
//! clock, then identify the typist from their rhythm.
//!
//! ```sh
//! cargo run --release --example keystroke_monitor
//! ```

use segscope_repro::attacks::keystroke::{
    identify_users, IdentifyResult, KeystrokeConfig, KeystrokeMonitor, TypistProfile,
};
use segscope_repro::irq::Ps;
use segscope_repro::segsim::{presets, Machine};

fn main() {
    println!("== Keystroke monitoring via SegScope ==");

    // 1. Recover one session's timing.
    let config = presets::by_name("xiaomi_air13").expect("known preset");
    let mut machine = Machine::new(config, 0x5E55);
    machine.spin(100_000_000);
    let profile = TypistProfile::for_user(0);
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(0xABCD)
    };
    let start = machine.now() + Ps::from_ms(1_600);
    let session = profile.type_session(start, 25, &mut rng);
    let trace = KeystrokeMonitor::new().monitor(&mut machine, &session);
    println!(
        "victim typed {} keys; attacker detected {} keystroke edges (no timer used)",
        trace.actual_keys,
        trace.detected_keys()
    );
    let sig = trace.signature();
    println!(
        "first recovered inter-key ratios: {:?}",
        sig.iter()
            .take(6)
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // 2. Identify users from their typing rhythm.
    let config = KeystrokeConfig::quick();
    let IdentifyResult {
        accuracy,
        users,
        sessions,
    } = identify_users(&config);
    println!(
        "\ntypist identification: {:.0}% over {} sessions from {} users (chance {:.0}%)",
        accuracy * 100.0,
        sessions,
        users,
        100.0 / users as f64
    );
}
