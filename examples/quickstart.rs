//! Quickstart: probe interrupts with SegScope on a simulated machine and
//! compare against ground truth and the timer-based baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use segscope_repro::attacks; // (unused here, linked for parity with other examples)
use segscope_repro::irq::{InterruptKind, Ps};
use segscope_repro::segscope::{KindHistogram, SegProbe, TsJumpProber};
use segscope_repro::segsim::{presets, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _ = &attacks::website::Setting::ALL; // keep the re-export exercised
    println!("== SegScope quickstart ==");
    let config = presets::by_name("xiaomi_air13").expect("known preset");
    println!("machine: {}", config.name);
    let mut machine = Machine::new(config, 2024);

    // 1. Plant a non-zero null selector and watch it get scrubbed.
    machine.wrgs(segscope_repro::x86seg::Selector::from_bits(0x1))?;
    println!("planted GS selector: {:#06x}", machine.rdgs().bits());
    let span = machine.run_user_until(Ps::MAX);
    if let segscope_repro::segsim::SpanEnd::Interrupt(irq) = span.ended_by {
        println!(
            "first interrupt: kind={}, handler cost={}",
            irq.kind, irq.handler_cost
        );
    }
    println!(
        "GS after kernel return: {:#06x} <- the footprint",
        machine.rdgs().bits()
    );

    // 2. Probe 1 second of interrupts; compare with ground truth.
    machine.ground_truth_mut().clear();
    let mut probe = SegProbe::new();
    let samples = probe.probe_for(&mut machine, Ps::from_secs(1))?;
    let truth = machine.ground_truth().len();
    println!(
        "\nSegScope probed {} interrupts; ground truth delivered {}",
        samples.len(),
        truth
    );

    // 3. SegCnt statistics per interrupt kind (paper Fig. 6).
    let hist = KindHistogram::from_samples(&samples);
    println!("\nSegCnt by interrupt kind:");
    for (kind, (count, mean, std)) in &hist.by_kind {
        println!("  {kind:>8}: n={count:<4} mean SegCnt={mean:>12.0} std={std:>10.0}");
    }
    assert_eq!(hist.dominant_kind(), Some(InterruptKind::Timer));

    // 4. Contrast with the timestamp-jump baseline (needs rdtsc and still
    //    overcounts).
    let prober = TsJumpProber::paper_default();
    machine.ground_truth_mut().clear();
    let detections = prober.probe_for(&mut machine, Ps::from_secs(1))?;
    let truth = machine.ground_truth().len() as u64;
    println!(
        "\ntimestamp-jump baseline: {} detections vs {} true interrupts (+{} false positives)",
        detections,
        truth,
        detections.saturating_sub(truth)
    );
    Ok(())
}
