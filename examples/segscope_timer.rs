//! Build the SegScope clock-interpolation timer and measure code with it,
//! comparing against the counting thread and `rdtsc` (paper Table III's
//! setting).
//!
//! ```sh
//! cargo run --release --example segscope_timer
//! ```

use segscope_repro::segscope::{CountingThreadTimer, Denoise, SegTimer};
use segscope_repro::segsim::{presets, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["xiaomi_air13", "amazon_c5_large"] {
        let config = presets::by_name(name).expect("known preset");
        println!("== {} ==", config.name);
        let mut machine = Machine::new(config, 77);
        machine.spin(500_000_000); // warm up the frequency governor

        let mut timer = SegTimer::calibrate(&mut machine, 200, Denoise::ZScore)?;
        println!(
            "calibrated: {:.0} ticks per {}-Hz timer period (sigma {:.0})",
            timer.interval_ticks(),
            machine.config().timer_hz,
            timer.interval_sigma()
        );

        // A workload of 1 million cycles, measured three ways.
        let work = 1_000_000u64;
        let seg = timer.measure(&mut machine, 20, |m| m.spin(work))?;
        let iter_cycles = machine.probe_iter_cycles();
        println!(
            "segscope timer : {:>10.0} ticks (≈{:>9.0} cycles), std ≈ {:>6.0} cycles over {} kept runs",
            seg.mean_ticks,
            seg.mean_ticks * iter_cycles,
            seg.std_ticks * iter_cycles,
            seg.kept
        );

        let (_, ct_delta) = CountingThreadTimer::time(&mut machine, |m| m.spin(work));
        println!(
            "counting thread: {:>10} increments (≈{:>9.0} cycles)",
            ct_delta,
            ct_delta as f64 * machine.config().counting_thread_iter_cycles
        );

        let t0 = machine.rdtsc()?;
        machine.spin(work);
        let t1 = machine.rdtsc()?;
        println!(
            "{:<15}: {:>10} TSC cycles (ground truth at base frequency)\n",
            machine.hires_timer_name(),
            t1 - t0
        );
    }
    Ok(())
}
