//! Observability demo: run the keystroke-monitoring attack with the
//! trace sink installed and export a Chrome-loadable trace.
//!
//! ```sh
//! SEGSCOPE_TRACE=keystroke.trace.json \
//!     cargo run --release --example segscope_trace
//! ```
//!
//! Open the emitted file in `chrome://tracing` (or Perfetto's legacy
//! loader) to see each session on its own track: timer and keyboard
//! interrupt deliveries as spans, segment-register scrubs and probe
//! samples as instants, and the governor's frequency as a counter.
//!
//! The example also double-checks the layer's two core guarantees:
//!
//! 1. **Exactness** — the trace's `irq_delivered` event count equals the
//!    simulator's ground-truth delivery count, interrupt for interrupt.
//! 2. **Determinism** — the merged trace is byte-identical at 1, 2 and
//!    4 worker threads (per-session sinks merged in session order).

use segscope_repro::attacks::keystroke::{monitor_sessions_traced, KeystrokeConfig};
use segscope_repro::obs::export;

const SESSIONS: usize = 2;
const RING_CAPACITY: usize = 1 << 15;

fn main() {
    println!("== SegScope observability: tracing the keystroke attack ==");
    // A compact run — two sessions, ten keys each — keeps the emitted
    // trace (and the golden CI diffs it against) small while exercising
    // the full attack path: calibration, injection, monitoring.
    let config = KeystrokeConfig {
        keys_per_session: 10,
        ..KeystrokeConfig::quick()
    };

    let run = |threads| monitor_sessions_traced(&config, SESSIONS, Some(threads), RING_CAPACITY);
    let reference = run(1);
    assert_eq!(
        reference.sink.dropped(),
        0,
        "ring overflowed; raise RING_CAPACITY"
    );

    // Guarantee 1: the trace reconciles with the ground truth exactly.
    let json = export::chrome_trace(&reference.sink);
    let delivered = export::chrome_delivery_count(&json);
    assert_eq!(
        delivered as u64, reference.ground_truth_deliveries,
        "trace deliveries must equal ground-truth deliveries"
    );
    println!(
        "{} sessions, {} events recorded, {} interrupt deliveries (== ground truth)",
        SESSIONS,
        reference.sink.len(),
        delivered
    );

    // Guarantee 2: byte-identical trace at any worker count.
    for threads in [2usize, 4] {
        let traced = run(threads);
        assert_eq!(
            export::chrome_trace(&traced.sink),
            json,
            "trace differs at {threads} threads"
        );
    }
    println!("trace is byte-identical at 1/2/4 worker threads");

    let path =
        std::env::var("SEGSCOPE_TRACE").unwrap_or_else(|_| "keystroke.trace.json".to_owned());
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "wrote {} ({} bytes) — load it in chrome://tracing",
        path,
        json.len()
    );
}
