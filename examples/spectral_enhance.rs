//! Enhance the Spectral attack with SegScope (paper Section IV-D,
//! Fig. 9): the selector footprint distinguishes interrupt wake-ups from
//! genuine cache-line writes, removing the interrupt-induced bit errors.
//!
//! ```sh
//! cargo run --release --example spectral_enhance
//! ```

use segscope_repro::attacks::spectral::{run_attack, SpectralConfig, SpectralMode};

fn main() {
    println!("== SegScope-enhanced Spectral ==");
    let bits = 20_000;
    let config = SpectralConfig::paper_default();
    println!(
        "leaking {bits} bits, umwait timeout {} cycles\n",
        config.timeout_cycles
    );

    let original = run_attack(&config, SpectralMode::Original, bits, 0x57EC);
    let enhanced = run_attack(&config, SpectralMode::Enhanced, bits, 0x57EC);

    println!(
        "original Spectral: {:>8.0} bit/s, error rate {:.4}% ({} errors)",
        original.leak_rate_bps,
        original.error_rate * 100.0,
        original.errors
    );
    println!(
        "enhanced Spectral: {:>8.0} bit/s, error rate {:.4}% ({} errors, {} interrupted measurements discarded)",
        enhanced.leak_rate_bps,
        enhanced.error_rate * 100.0,
        enhanced.errors,
        enhanced.discarded
    );
    if enhanced.error_rate > 0.0 {
        println!(
            "\nerror-rate reduction: {:.0}x",
            original.error_rate / enhanced.error_rate
        );
    } else {
        println!("\nerror-rate reduction: (enhanced run was error-free)");
    }

    println!("\nerror rate vs umwait timeout (paper Fig. 9):");
    println!("{:>10} {:>12} {:>12}", "timeout", "original", "enhanced");
    for timeout in [20_000u64, 60_000, 100_000, 140_000, 200_000] {
        let cfg = SpectralConfig::paper_default().with_timeout(timeout);
        let orig = run_attack(&cfg, SpectralMode::Original, 6_000, 0x57ED);
        let enh = run_attack(&cfg, SpectralMode::Enhanced, 6_000, 0x57ED);
        println!(
            "{:>10} {:>11.4}% {:>11.4}%",
            timeout,
            orig.error_rate * 100.0,
            enh.error_rate * 100.0
        );
    }
}
