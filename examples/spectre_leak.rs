//! Leak a secret string with Spectre-V1 + Flush+Reload, timed entirely by
//! the SegScope timer (paper Section IV-F, Fig. 12).
//!
//! ```sh
//! cargo run --release --example spectre_leak
//! ```

use segscope_repro::attacks::spectre::{leak_secret, SpectreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Spectre-V1 + Flush+Reload via the SegScope timer ==");
    let secret = b"SEGSCOPE SECRET";
    let config = SpectreConfig::quick();
    println!(
        "leaking {} bytes with {} gadget replicas, {} candidates...",
        secret.len(),
        config.gadgets,
        config.candidates
    );
    let result = leak_secret(secret, &config, 0x1EA4)?;
    let recovered: String = result
        .bytes
        .iter()
        .map(|b| {
            let c = b.guessed as char;
            if c.is_ascii_graphic() || c == ' ' {
                c
            } else {
                '?'
            }
        })
        .collect();
    println!("recovered: \"{recovered}\"");
    println!(
        "success rate: {:.1}%  throughput: {:.2} B per simulated second",
        result.success_rate * 100.0,
        result.rate_bps
    );

    // Fig. 12 style bar data for the first byte.
    let leak = &result.bytes[0];
    println!(
        "\nFig. 12 (first byte '{}'): top-5 candidates by tail SegCnt",
        leak.actual as char
    );
    let series = leak.fig12_series(1.0e7);
    let mut indexed: Vec<(usize, f64)> = series.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (v, tail) in indexed.into_iter().take(5) {
        let c = v as u8 as char;
        println!(
            "  {:>4} ({}) : {:>12.0}",
            v,
            if c.is_ascii_graphic() { c } else { '.' },
            tail
        );
    }
    Ok(())
}
