//! End-to-end website fingerprinting (paper Section IV-A): collect SegCnt
//! traces of simulated site visits, train the LSTM, and report top-1 /
//! top-5 accuracy for Chrome and Tor.
//!
//! ```sh
//! cargo run --release --example website_fingerprint
//! ```

use segscope_repro::attacks::website::{run_experiment, Browser, Setting, WebsiteFpConfig};

fn main() {
    println!("== Website fingerprinting with SegScope traces ==");
    for browser in [Browser::Chrome, Browser::Tor] {
        let config = WebsiteFpConfig::quick(browser, Setting::Default);
        println!(
            "\n{browser:?}: {} sites x {} traces, {}-sample traces pooled to {}",
            config.n_sites, config.traces_per_site, config.trace_len, config.pooled_len
        );
        let result = run_experiment(&config);
        println!(
            "top-1 accuracy: {:5.1}% +- {:.1}  (chance {:.1}%)",
            result.top1 * 100.0,
            result.top1_std * 100.0,
            result.chance * 100.0
        );
        println!(
            "top-5 accuracy: {:5.1}% +- {:.1}",
            result.top5 * 100.0,
            result.top5_std * 100.0
        );
    }
    println!("\n(use `cargo bench -p segscope-bench --bench table4_websites` for the full Table IV sweep)");
}
