#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
#
# The build is hermetic (no registry access); --offline keeps cargo from
# trying the network. SEGSCOPE_THREADS caps the experiment engine's
# worker count if the CI host is oversubscribed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI OK"
