#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
#
# The build is hermetic (no registry access); --offline keeps cargo from
# trying the network. SEGSCOPE_THREADS caps the experiment engine's
# worker count if the CI host is oversubscribed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> examples (release, seeded)"
for example in covert_channel kaslr_break keystroke_monitor quickstart \
               segscope_timer spectral_enhance spectre_leak website_fingerprint; do
    echo "--> $example"
    cargo run --release --offline --example "$example" >/dev/null
done

echo "==> segscope CLI (release): list + per-scenario run smoke"
cargo build --release --offline --bin segscope
SEGSCOPE="target/release/segscope"
"$SEGSCOPE" list >/dev/null
for name in $("$SEGSCOPE" list --names); do
    echo "--> segscope run $name"
    # Repetition scenarios take --trials 2; structured ones (trial count
    # fixed by the config) ignore it and run their quick() defaults.
    "$SEGSCOPE" run "$name" --trials 2 >/dev/null
done

echo "==> enclave scenarios + countermeasure smoke (release)"
# The enclave studies under each armed defense, plus the no-op warning
# path for a scenario whose config carries no machine.
"$SEGSCOPE" run aexcount --seed 0xAE0 --trials 2 >/dev/null
"$SEGSCOPE" run heckler --seed 0x4EC --trials 2 >/dev/null
for defense in none quanshield padding; do
    "$SEGSCOPE" run aexcount --seed 0xAE0 --trials 2 --defense "$defense" >/dev/null
    "$SEGSCOPE" run heckler --seed 0x4EC --trials 2 --defense "$defense" >/dev/null
done
"$SEGSCOPE" describe heckler > target/ci.describe.txt
grep -q "defenses: none, quanshield, padding" target/ci.describe.txt || {
    echo "segscope describe does not list the defense axis" >&2
    exit 1
}

echo "==> segscope CLI golden report diff (covert)"
"$SEGSCOPE" run covert --seed 0xC07E --trials 2 --threads 2 \
    --report target/covert.report.json >/dev/null
if [[ "${SEGSCOPE_BLESS:-0}" == "1" ]]; then
    cp target/covert.report.json tests/golden/covert.report.json
    echo "blessed tests/golden/covert.report.json"
elif ! cmp -s target/covert.report.json tests/golden/covert.report.json; then
    echo "segscope run covert report drifted from tests/golden/covert.report.json;" >&2
    echo "if intentional: SEGSCOPE_BLESS=1 scripts/ci.sh (or cp target/covert.report.json tests/golden/)" >&2
    exit 1
fi

echo "==> segscope serve-bench smoke + golden verdict diff"
# The streaming-serving smoke: batched and sequential serving must
# agree on the verdict FNV (the binary hard-errors on divergence), and
# the whole report — verdict hashes included — must match the
# checked-in golden byte for byte.
"$SEGSCOPE" serve-bench --out target/serve.report.json >/dev/null
if [[ "${SEGSCOPE_BLESS:-0}" == "1" ]]; then
    cp target/serve.report.json tests/golden/serve.report.json
    echo "blessed tests/golden/serve.report.json"
elif ! cmp -s target/serve.report.json tests/golden/serve.report.json; then
    echo "segscope serve-bench report drifted from tests/golden/serve.report.json;" >&2
    echo "if intentional: SEGSCOPE_BLESS=1 scripts/ci.sh (or cp target/serve.report.json tests/golden/)" >&2
    exit 1
fi

echo "==> segscope_trace example (release) + golden trace diff"
SEGSCOPE_TRACE=target/keystroke.trace.json \
    cargo run --release --offline --example segscope_trace >/dev/null
if ! cmp -s target/keystroke.trace.json tests/golden/keystroke.trace.json; then
    echo "segscope_trace output drifted from tests/golden/keystroke.trace.json;" >&2
    echo "if intentional: cp target/keystroke.trace.json tests/golden/keystroke.trace.json" >&2
    exit 1
fi

echo "==> golden determinism gate (no SEGSCOPE_BLESS)"
# Re-assert every checked-in golden byte-identical with blessing
# explicitly disabled, so a blessed CI run can never mask drift.
SEGSCOPE_BLESS=0 cargo test -q --offline --test golden_trace
SEGSCOPE_BLESS=0 "$SEGSCOPE" run covert --seed 0xC07E --trials 2 --threads 2 \
    --report target/covert.report.determinism.json >/dev/null
cmp target/covert.report.determinism.json tests/golden/covert.report.json
SEGSCOPE_BLESS=0 SEGSCOPE_TRACE=target/keystroke.trace.determinism.json \
    cargo run --release --offline --example segscope_trace >/dev/null
cmp target/keystroke.trace.determinism.json tests/golden/keystroke.trace.json
SEGSCOPE_BLESS=0 "$SEGSCOPE" serve-bench \
    --out target/serve.report.determinism.json >/dev/null
cmp target/serve.report.determinism.json tests/golden/serve.report.json

echo "==> bench_hotpath (quick) + BENCH_hotpath.json schema"
# Absolute path: cargo bench runs the harness with the package dir as cwd.
SEGSCOPE_BENCH_JSON="$PWD/target/BENCH_hotpath.json" \
    cargo bench -q --offline -p segscope-bench --bench bench_hotpath >/dev/null
# The binary already enforces the hot-path invariants via validate();
# here we check the emitted file carries the schema CI consumers read.
for key in fabric probe scenario note naive_events_per_s \
           calendar_events_per_s speedup alloc_reduction trials_per_s; do
    if ! grep -q "\"$key\"" target/BENCH_hotpath.json; then
        echo "target/BENCH_hotpath.json missing key \"$key\"" >&2
        exit 1
    fi
done

echo "==> bench_batched (quick) + BENCH_batched.json schema"
# validate() inside the binary enforces the hard gates: batched path
# bit-identical to scalar, adaptive fabric >= 1.0x at 3 sources, batched
# trials >= 2x (>= 5x when SEGSCOPE_BENCH_FULL=1).
SEGSCOPE_BENCH_JSON="$PWD/target/BENCH_batched.json" \
    cargo bench -q --offline -p segscope-bench --bench bench_batched >/dev/null
for key in fabric trials full_scale note mode peeks_per_pop \
           adaptive_events_per_s scalar_trials_per_s batched_trials_per_s \
           slots_per_trial speedup identical; do
    if ! grep -q "\"$key\"" target/BENCH_batched.json; then
        echo "target/BENCH_batched.json missing key \"$key\"" >&2
        exit 1
    fi
done

echo "==> bench_campaign (quick) + BENCH_campaign.json schema"
# validate() inside the binary enforces the hard gates: merged reports
# bit-identical at shard counts 1/4/8 (>= 2x sharded speedup on
# multi-core hosts).
SEGSCOPE_BENCH_JSON="$PWD/target/BENCH_campaign.json" \
    cargo bench -q --offline -p segscope-bench --bench bench_campaign >/dev/null
for key in spec cells trials_per_cell arms shards wall_s cells_per_s \
           report_digest identical multi_core full_scale note; do
    if ! grep -q "\"$key\"" target/BENCH_campaign.json; then
        echo "target/BENCH_campaign.json missing key \"$key\"" >&2
        exit 1
    fi
done

echo "==> bench_serve (quick) + BENCH_serve.json schema"
# validate() inside the binary enforces the hard gates: every batched
# arm's verdict stream bit-identical (FNV-folded) to the sequential
# baseline at capacities 1/8/64 on both precisions, quantized accuracy
# within budget of the f64 model (>= 3x batched session throughput on
# multi-core hosts).
SEGSCOPE_BENCH_JSON="$PWD/target/BENCH_serve.json" \
    cargo bench -q --offline -p segscope-bench --bench bench_serve >/dev/null
for key in sessions steps_per_session arms sequential quant precision \
           capacity sessions_per_s speedup verdict_fnv scheme \
           accuracy_delta eval_examples threads multi_core full_scale note; do
    if ! grep -q "\"$key\"" target/BENCH_serve.json; then
        echo "target/BENCH_serve.json missing key \"$key\"" >&2
        exit 1
    fi
done

echo "==> segscope campaign smoke: sweep, kill, resume, report"
# A 2-scenario x 2-preset grid: run it whole, then kill a second copy
# mid-run, resume it at a different shard count, and require the two
# report files byte-identical. Also gates the report JSON schema.
CAMP_SPEC='{"name":"ci-smoke","seed":193,
  "scenarios":[{"scenario":"kaslr","params":null},{"scenario":"covert","params":null}],
  "presets":["lenovo_yangtian","amazon_t2_large"],
  "faults":[{"name":"none","plan":null},
            {"name":"delivery_storm","plan":{"drop_prob":0.15,"duplicate_prob":0.08,
             "duplicate_delay":50000000,"coalesce_window":800000000,"handler_jitter_std":0,
             "freq_step_clamp_khz":null,"smt_burst_prob":0,"smt_burst_factor":1,"smt_burst_ops":0}}],
  "replicates":1,"trials":null}'
rm -rf target/ci-campaign target/ci-campaign-killed
echo "$CAMP_SPEC" > target/ci-campaign.spec.json
"$SEGSCOPE" campaign run --spec target/ci-campaign.spec.json --trials 2 \
    --out target/ci-campaign --shards 2 >/dev/null
"$SEGSCOPE" campaign status --out target/ci-campaign > target/ci.camp-status.txt
grep -q "8/8 cells complete" target/ci.camp-status.txt || {
    echo "campaign status does not report completion" >&2
    exit 1
}
"$SEGSCOPE" campaign run --spec target/ci-campaign.spec.json --trials 2 \
    --out target/ci-campaign-killed --shards 3 --stop-after-waves 1 >/dev/null
if "$SEGSCOPE" campaign report --out target/ci-campaign-killed >/dev/null 2>&1; then
    echo "campaign report accepted an incomplete manifest" >&2
    exit 1
fi
"$SEGSCOPE" campaign resume --out target/ci-campaign-killed --shards 8 >/dev/null
cmp target/ci-campaign/report.json target/ci-campaign-killed/report.json || {
    echo "killed+resumed campaign report differs from the uninterrupted one" >&2
    exit 1
}
# The merged report must carry the schema campaign consumers read.
for key in name seed spec_digest cells totals fault_log matrix cell_results \
           scenario preset fault replicate report ground_truth_deliveries \
           delivery_faults timing_faults; do
    if ! grep -q "\"$key\"" target/ci-campaign/report.json; then
        echo "target/ci-campaign/report.json missing key \"$key\"" >&2
        exit 1
    fi
done

echo "==> segscope campaign defense matrix: spec, run, report schema"
# The enclave attack x defense matrix end to end at low trial count:
# emit the spec via --defense-matrix, run it sharded, and require the
# merged report to carry the defense axis and per-row accuracy.
rm -rf target/ci-matrix
"$SEGSCOPE" campaign spec --defense-matrix --seed 0xDEF1 \
    --out target/ci-matrix.spec.json >/dev/null
grep -q '"defenses"' target/ci-matrix.spec.json || {
    echo "defense-matrix spec missing the defenses axis" >&2
    exit 1
}
"$SEGSCOPE" campaign run --spec target/ci-matrix.spec.json --trials 2 \
    --out target/ci-matrix --shards 3 >/dev/null
for key in defense mean_accuracy accuracy_cells quanshield padding; do
    if ! grep -q "\"$key\"" target/ci-matrix/report.json; then
        echo "target/ci-matrix/report.json missing key \"$key\"" >&2
        exit 1
    fi
done

echo "==> snapshot fuzz gate (release, random pause points)"
# The restore-exactness proptests at release optimization: presets ×
# fault plans × random pause points through a full JSON cycle, plus the
# record/replay/bisect suite in the umbrella crate.
cargo test -q --offline --release --test snapshot_roundtrip
cargo test -q --offline --release --lib -p segscope-repro replay

echo "==> segscope snapshot/replay round trip + recording schema"
"$SEGSCOPE" snapshot --machine lenovo_savior --seed 0x51AB --spans 32 \
    --every 8 --out target/ci.rec.json >/dev/null
"$SEGSCOPE" replay --in target/ci.rec.json --from 40 >/dev/null
# The serialized recording must carry the schema replay consumers read:
# the spec, the event stream, and the snapshot ladder down to the
# machine image's RNG position and fabric state.
for key in spec events snapshots final_digest machine seed spans \
           event_index digest snapshot rng_state now fabric; do
    if ! grep -q "\"$key\"" target/ci.rec.json; then
        echo "target/ci.rec.json missing key \"$key\"" >&2
        exit 1
    fi
done
# And the bisector must localize a single injected fault. Capture to a
# file first: grep -q on a pipe exits at the first match and the closed
# pipe kills the still-printing binary with EPIPE.
"$SEGSCOPE" bisect --machine lenovo_savior --seed 9 --spans 24 \
    --inject-b 40000:gpu > target/ci.bisect.txt
grep -q "first divergence at event" target/ci.bisect.txt || {
    echo "segscope bisect failed to localize an injected fault" >&2
    exit 1
}

if [[ "${SEGSCOPE_OBS_FULL:-0}" == "1" ]]; then
    echo "==> obs 16M-event stress pass (SEGSCOPE_OBS_FULL=1)"
    cargo test -q --offline -p obs --release -- --include-ignored
fi

if [[ "${SEGSCOPE_CONFORMANCE_FULL:-0}" == "1" ]]; then
    echo "==> full conformance sweep (SEGSCOPE_CONFORMANCE_FULL=1)"
    cargo test -q --offline -p conformance --release -- --include-ignored
fi

echo "==> cargo doc -D warnings"
# The compat/ stand-ins mirror third-party doc text we don't own; the
# gate covers every crate we write.
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --workspace --no-deps \
    --exclude rand --exclude serde --exclude serde_derive \
    --exclude serde_json --exclude proptest --exclude criterion >/dev/null

echo "==> cargo clippy -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI OK"
