#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
#
# The build is hermetic (no registry access); --offline keeps cargo from
# trying the network. SEGSCOPE_THREADS caps the experiment engine's
# worker count if the CI host is oversubscribed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> examples (release, seeded)"
for example in covert_channel kaslr_break keystroke_monitor quickstart \
               segscope_timer spectral_enhance spectre_leak website_fingerprint; do
    echo "--> $example"
    cargo run --release --offline --example "$example" >/dev/null
done

if [[ "${SEGSCOPE_CONFORMANCE_FULL:-0}" == "1" ]]; then
    echo "==> full conformance sweep (SEGSCOPE_CONFORMANCE_FULL=1)"
    cargo test -q --offline -p conformance --release -- --include-ignored
fi

echo "==> cargo clippy -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI OK"
