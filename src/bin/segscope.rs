//! `segscope` — the single CLI driver of the nine attack scenarios.
//!
//! ```text
//! segscope list [--names]
//! segscope describe <name>
//! segscope run <name> [--seed N] [--trials N] [--threads N]
//!                     [--params JSON] [--machine PRESET]
//!                     [--fault-plan JSON] [--capacity N]
//!                     [--trace-out PATH] [--report PATH]
//! segscope snapshot [SPEC FLAGS] [--every K] --out PATH
//! segscope replay --in PATH [--from EVENT]
//! segscope bisect [SHARED SPEC FLAGS] [per-side -a/-b flags] [--every K]
//! ```
//!
//! Every run goes through the same generic deterministic driver
//! ([`scenario::run_scenario`]): reports and merged traces are
//! bit-identical at any `--threads` value, and identical to what the
//! per-attack library APIs produce for the same seed. The
//! `snapshot`/`replay`/`bisect` trio drives the record-and-replay layer
//! ([`segscope_repro::replay`]) over single-machine runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scenario::{RunOptions, ScenarioError};
use segscope_repro::replay::{self, InjectedIrq, RunSpec};
use segscope_repro::{attacks, irq, obs, scenario, segsim};
use serde::{Serialize, Value};
use std::process::ExitCode;

const USAGE: &str = "segscope — deterministic SegScope scenario driver

USAGE:
    segscope list [--names]
    segscope describe <name>
    segscope run <name> [OPTIONS]
    segscope snapshot [SPEC FLAGS] [--every K] --out PATH
    segscope replay --in PATH [--from EVENT]
    segscope bisect [SPEC FLAGS] [PER-SIDE FLAGS] [--every K]

RUN OPTIONS:
    --seed N           Experiment seed override (default: the scenario's)
    --trials N         Trial-count override (structured scenarios ignore it)
    --threads N        Worker threads (default: SEGSCOPE_THREADS, else all cores)
    --params JSON      Full scenario config as JSON (default: the scenario's)
    --machine PRESET   Replace the config's `machine` field with a Table I
                       preset (only scenarios with a `machine` field react)
    --fault-plan JSON  Run-level interrupt fault-plan override
    --capacity N       Per-trial trace-ring capacity in events
                       (default: 0 = untraced; 32768 when --trace-out is given)
    --trace-out PATH   Write the merged trace as Chrome trace_event JSON
    --report PATH      Also write the report JSON to PATH

SPEC FLAGS (snapshot, and the shared base of bisect):
    --machine PRESET   Table I preset to run (default: xiaomi_air13)
    --seed N           Machine seed
    --spans N          Marker/run-until-interrupt spans to execute
    --fault-plan JSON  Fault plan installed before the run
    --inject US:KIND   Inject a one-shot interrupt at US microseconds
                       (kind: timer resched perfmon network gpu keyboard
                       thermal callfunction other; repeatable)

BISECT PER-SIDE FLAGS: --seed-a/--seed-b N,
    --fault-plan-a/--fault-plan-b JSON, --inject-a/--inject-b US:KIND
    (each overrides the shared spec on that side only)

The run report JSON is always printed to stdout. Machine presets:
    xiaomi_air13 lenovo_yangtian lenovo_savior honor_magicbook
    amazon_t2_large amazon_c5_large";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("describe") => cmd_describe(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("bisect") => cmd_bisect(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let names_only = match args {
        [] => false,
        [flag] if flag == "--names" => true,
        _ => return Err(format!("usage: segscope list [--names]\n\n{USAGE}")),
    };
    let registry = attacks::registry();
    let width = registry
        .entries()
        .iter()
        .map(|s| s.name().len())
        .max()
        .unwrap_or(0);
    for entry in registry.entries() {
        if names_only {
            println!("{}", entry.name());
        } else {
            println!("{:width$}  {}", entry.name(), entry.describe());
        }
    }
    Ok(())
}

fn cmd_describe(args: &[String]) -> Result<(), String> {
    let [name] = args else {
        return Err(format!("usage: segscope describe <name>\n\n{USAGE}"));
    };
    let entry = attacks::registry().get(name).map_err(|e| e.to_string())?;
    println!("{}: {}", entry.name(), entry.describe());
    println!(
        "default params: {}",
        serde_json::to_string(&entry.default_params()).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// Parsed `segscope run` flags.
struct RunArgs {
    name: String,
    params: Option<Value>,
    machine: Option<String>,
    opts: RunOptions,
    capacity_set: bool,
    trace_out: Option<String>,
    report_out: Option<String>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut it = args.iter();
    let Some(name) = it.next() else {
        return Err(format!("usage: segscope run <name> [OPTIONS]\n\n{USAGE}"));
    };
    let mut parsed = RunArgs {
        name: name.clone(),
        params: None,
        machine: None,
        opts: RunOptions::default(),
        capacity_set: false,
        trace_out: None,
        report_out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--seed" => {
                parsed.opts.seed = Some(parse_u64(&value()?, flag)?);
            }
            "--trials" => {
                parsed.opts.trials = Some(parse_u64(&value()?, flag)? as usize);
            }
            "--threads" => {
                let threads = parse_u64(&value()?, flag)? as usize;
                if threads == 0 {
                    return Err("`--threads` must be at least 1".to_owned());
                }
                parsed.opts.threads = Some(threads);
            }
            "--capacity" => {
                parsed.opts.capacity = parse_u64(&value()?, flag)? as usize;
                parsed.capacity_set = true;
            }
            "--params" => {
                let text = value()?;
                let json: Value = serde_json::from_str(&text)
                    .map_err(|e| format!("`--params` is not valid JSON: {e}"))?;
                parsed.params = Some(json);
            }
            "--machine" => {
                parsed.machine = Some(value()?);
            }
            "--fault-plan" => {
                let text = value()?;
                let plan: segsim::FaultPlan = serde_json::from_str(&text)
                    .map_err(|e| format!("`--fault-plan` is not a valid fault plan: {e}"))?;
                parsed.opts.fault_plan = Some(plan);
            }
            "--trace-out" => {
                parsed.trace_out = Some(value()?);
            }
            "--report" => {
                parsed.report_out = Some(value()?);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok(parsed)
}

fn parse_u64(text: &str, flag: &str) -> Result<u64, String> {
    let digits = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"));
    match digits {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    }
    .map_err(|_| format!("`{flag}` needs an unsigned integer, got `{text}`"))
}

/// Replaces (or inserts) the top-level `machine` key of `params` with the
/// named Table I preset. Scenarios whose config has no `machine` field
/// ignore unknown keys, so the caller warns when that is about to happen.
fn inject_machine(params: &mut Value, preset: &str) -> Result<(), String> {
    let config = segsim::presets::by_name(preset).ok_or_else(|| {
        format!(
            "unknown machine preset `{preset}` (choose from: {})",
            segsim::presets::NAMES.join(", ")
        )
    })?;
    let Value::Map(entries) = params else {
        return Err("scenario params are not a JSON object".to_owned());
    };
    let machine = config.to_value();
    match entries.iter_mut().find(|(k, _)| k == "machine") {
        Some((_, slot)) => *slot = machine,
        None => {
            eprintln!(
                "warning: scenario config has no `machine` field; `--machine {preset}` has no effect"
            );
            entries.push(("machine".to_owned(), machine));
        }
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut parsed = parse_run_args(args)?;
    let entry = attacks::registry()
        .get(&parsed.name)
        .map_err(|e| e.to_string())?;
    if let Some(preset) = &parsed.machine {
        let mut params = match parsed.params.take() {
            Some(params) => params,
            None => entry.default_params(),
        };
        inject_machine(&mut params, preset)?;
        parsed.params = Some(params);
    }
    if parsed.trace_out.is_some() && !parsed.capacity_set {
        parsed.opts.capacity = 1 << 15;
    }
    if parsed.trace_out.is_none() && parsed.opts.capacity > 0 {
        eprintln!("warning: tracing enabled (--capacity) but no --trace-out; trace is discarded");
    }
    let run = entry
        .run_dyn(parsed.params.as_ref(), &parsed.opts)
        .map_err(|e| match e {
            ScenarioError::Params(msg) => format!(
                "invalid params for `{}`: {msg}\n(see `segscope describe {}`)",
                parsed.name, parsed.name
            ),
            other => other.to_string(),
        })?;
    let report_json = serde_json::to_string(&run.report).map_err(|e| e.to_string())?;
    println!("{report_json}");
    if let Some(path) = &parsed.report_out {
        std::fs::write(path, format!("{report_json}\n"))
            .map_err(|e| format!("cannot write report to `{path}`: {e}"))?;
    }
    if let Some(path) = &parsed.trace_out {
        let sink = run
            .sink
            .as_ref()
            .ok_or_else(|| "no trace collected (is --capacity 0?)".to_owned())?;
        std::fs::write(path, obs::export::chrome_trace(sink))
            .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
    }
    Ok(())
}

/// Parses a `US:KIND` one-shot injection argument (microseconds plus an
/// interrupt-kind name).
fn parse_inject(text: &str, flag: &str) -> Result<InjectedIrq, String> {
    let (us, kind) = text
        .split_once(':')
        .ok_or_else(|| format!("`{flag}` needs US:KIND, got `{text}`"))?;
    let at = irq::Ps::from_us(parse_u64(us, flag)?);
    let kind = match kind.to_ascii_lowercase().as_str() {
        "timer" => irq::InterruptKind::Timer,
        "resched" => irq::InterruptKind::Resched,
        "perfmon" => irq::InterruptKind::PerfMon,
        "network" => irq::InterruptKind::Network,
        "gpu" => irq::InterruptKind::Gpu,
        "keyboard" => irq::InterruptKind::Keyboard,
        "thermal" => irq::InterruptKind::Thermal,
        "callfunction" => irq::InterruptKind::CallFunction,
        "other" => irq::InterruptKind::Other,
        unknown => return Err(format!("`{flag}`: unknown interrupt kind `{unknown}`")),
    };
    Ok(InjectedIrq { at, kind })
}

fn parse_fault_plan(text: &str, flag: &str) -> Result<segsim::FaultPlan, String> {
    serde_json::from_str(text).map_err(|e| format!("`{flag}` is not a valid fault plan: {e}"))
}

/// Applies one shared spec flag to `spec`; `Ok(false)` means the flag is
/// not a spec flag and belongs to the caller.
fn apply_spec_flag(
    spec: &mut RunSpec,
    flag: &str,
    value: &mut dyn FnMut() -> Result<String, String>,
) -> Result<bool, String> {
    match flag {
        "--machine" => spec.machine = value()?,
        "--seed" => spec.seed = parse_u64(&value()?, flag)?,
        "--spans" => spec.spans = parse_u64(&value()?, flag)? as usize,
        "--fault-plan" => spec.fault_plan = Some(parse_fault_plan(&value()?, flag)?),
        "--inject" => spec.inject.push(parse_inject(&value()?, flag)?),
        _ => return Ok(false),
    }
    Ok(true)
}

fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let mut spec = RunSpec::default();
    let mut every = 8usize;
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        if apply_spec_flag(&mut spec, flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--every" => every = parse_u64(&value()?, flag)?.max(1) as usize,
            "--out" => out = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let out = out.ok_or_else(|| "`segscope snapshot` needs --out PATH".to_owned())?;
    let recording = replay::record(&spec, every)?;
    let json = serde_json::to_string(&recording).map_err(|e| e.to_string())?;
    std::fs::write(&out, json + "\n")
        .map_err(|e| format!("cannot write recording to `{out}`: {e}"))?;
    println!(
        "recorded {} events over {} spans ({} snapshot rungs, digest {:#018x}) -> {out}",
        recording.events.len(),
        recording.spec.spans,
        recording.snapshots.len(),
        recording.final_digest,
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let mut input = None;
    let mut from = 0usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--in" => input = Some(value()?),
            "--from" => from = parse_u64(&value()?, flag)? as usize,
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let input = input.ok_or_else(|| "`segscope replay` needs --in PATH".to_owned())?;
    let text = std::fs::read_to_string(&input)
        .map_err(|e| format!("cannot read recording `{input}`: {e}"))?;
    let recording: replay::Recording = serde_json::from_str(&text)
        .map_err(|e| format!("`{input}` is not a valid recording: {e}"))?;
    let slice = replay::replay_from(&recording, from);
    if slice.matches(&recording) {
        println!(
            "replayed {} events from span {} (event {}): bit-identical to the recording",
            slice.events.len(),
            slice.from_span,
            slice.from_event,
        );
        Ok(())
    } else {
        let index = slice.from_event
            + replay::first_divergence(&recording.events[slice.from_event..], &slice.events)
                .expect("mismatch implies a first divergence");
        Err(format!(
            "replay diverged from the recording at event {index} — \
             the recording no longer matches this build's simulator"
        ))
    }
}

fn cmd_bisect(args: &[String]) -> Result<(), String> {
    let mut base = RunSpec::default();
    let mut every = 8usize;
    // Per-side overrides are applied after the shared flags, so order on
    // the command line does not matter.
    let mut seed = [None, None];
    let mut fault = [None, None];
    let mut inject: [Vec<InjectedIrq>; 2] = [Vec::new(), Vec::new()];
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        if apply_spec_flag(&mut base, flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--every" => every = parse_u64(&value()?, flag)?.max(1) as usize,
            "--seed-a" => seed[0] = Some(parse_u64(&value()?, flag)?),
            "--seed-b" => seed[1] = Some(parse_u64(&value()?, flag)?),
            "--fault-plan-a" => fault[0] = Some(parse_fault_plan(&value()?, flag)?),
            "--fault-plan-b" => fault[1] = Some(parse_fault_plan(&value()?, flag)?),
            "--inject-a" => inject[0].push(parse_inject(&value()?, flag)?),
            "--inject-b" => inject[1].push(parse_inject(&value()?, flag)?),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let side = |i: usize| {
        let mut spec = base.clone();
        if let Some(s) = seed[i] {
            spec.seed = s;
        }
        if let Some(p) = fault[i] {
            spec.fault_plan = Some(p);
        }
        spec.inject.extend(inject[i].iter().copied());
        spec
    };
    match replay::bisect(&side(0), &side(1), every)? {
        None => println!("event streams are identical"),
        Some(report) => println!("{report}"),
    }
    Ok(())
}
