//! `segscope` — the single CLI driver of the eleven attack scenarios.
//!
//! ```text
//! segscope list [--names]
//! segscope describe <name>
//! segscope run <name> [--seed N] [--trials N] [--threads N]
//!                     [--params JSON] [--machine PRESET]
//!                     [--defense NAME] [--fault-plan JSON]
//!                     [--capacity N]
//!                     [--trace-out PATH] [--report PATH]
//! segscope snapshot [SPEC FLAGS] [--every K] --out PATH
//! segscope replay --in PATH [--from EVENT]
//! segscope bisect [SHARED SPEC FLAGS] [per-side -a/-b flags] [--every K]
//! segscope campaign spec|run|status|resume|report ...
//! segscope serve-bench [--sessions N] [--capacity N] [--quant i8|i16]
//! ```
//!
//! Every run goes through the same generic deterministic driver
//! ([`scenario::run_scenario`]): reports and merged traces are
//! bit-identical at any `--threads` value, and identical to what the
//! per-attack library APIs produce for the same seed. The
//! `snapshot`/`replay`/`bisect` trio drives the record-and-replay layer
//! ([`segscope_repro::replay`]) over single-machine runs, and
//! `campaign` drives the fleet-scale sweep engine
//! ([`segscope_repro::campaign`]): sharded, resumable parameter-grid
//! sweeps whose merged reports are bit-identical at any shard count,
//! thread count, and kill/resume schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use campaign::{CampaignManifest, CampaignOptions, CampaignReport, CampaignSpec};
use scenario::{RunOptions, ScenarioError};
use segscope_repro::replay::{self, InjectedIrq, RunSpec};
use segscope_repro::{attacks, campaign, irq, obs, scenario, segsim};
use serde::{Serialize, Value};
use std::process::ExitCode;

const USAGE: &str = "segscope — deterministic SegScope scenario driver

USAGE:
    segscope list [--names]
    segscope describe <name>
    segscope run <name> [OPTIONS]
    segscope snapshot [SPEC FLAGS] [--every K] --out PATH
    segscope replay --in PATH [--from EVENT]
    segscope bisect [SPEC FLAGS] [PER-SIDE FLAGS] [--every K]
    segscope campaign spec [--seed N] [--out PATH] [--defense-matrix]
    segscope campaign run --out DIR [--spec PATH] [CAMPAIGN OPTIONS]
    segscope campaign status --out DIR
    segscope campaign resume --out DIR [CAMPAIGN OPTIONS]
    segscope campaign report --out DIR
    segscope serve-bench [--sessions N] [--capacity N] [--quant i8|i16]
                         [--out PATH]

`serve-bench` collects fixed-seed website traces, serves them through
the streaming engine (the serve crate) sequentially and batched,
verifies the batched/sequential verdict identity, and prints a fully
deterministic JSON report (verdict FNV, quantized agreement — no
timing), suitable for golden comparison in CI.

`campaign spec --defense-matrix` emits the enclave attack x defense
matrix instead of the full grid: {aexcount, heckler, keystroke} x
{none, quanshield, padding} on the xiaomi_air13 preset.

CAMPAIGN OPTIONS (run, resume):
    --spec PATH        Campaign spec JSON (default for run: the full
                       11-scenario x 6-preset x 3-fault grid)
    --seed N           Override the spec's campaign seed (run only)
    --trials N         Override the spec's per-cell trial count (run only)
    --shards N         Cells run concurrently per wave (default 1)
    --threads N        Worker threads within each cell's run
    --stop-after-waves N  Checkpoint and exit after N waves (resume later)

A campaign directory holds spec.json (the resolved grid), manifest.json
(per-cell progress, rewritten after every wave), and report.json (the
merged result, written on completion). Reports are bit-identical at any
--shards/--threads value and across any kill/resume schedule.

RUN OPTIONS:
    --seed N           Experiment seed override (default: the scenario's)
    --trials N         Trial-count override (structured scenarios ignore it)
    --threads N        Worker threads (default: SEGSCOPE_THREADS, else all cores)
    --params JSON      Full scenario config as JSON (default: the scenario's)
    --machine PRESET   Replace the config's `machine` field with a Table I
                       preset (only scenarios with a `machine` field react)
    --defense NAME     Arm a countermeasure on the config's machine
                       (none, quanshield, padding; applied after --machine)
    --fault-plan JSON  Run-level interrupt fault-plan override
    --capacity N       Per-trial trace-ring capacity in events
                       (default: 0 = untraced; 32768 when --trace-out is given)
    --trace-out PATH   Write the merged trace as Chrome trace_event JSON
    --report PATH      Also write the report JSON to PATH

SPEC FLAGS (snapshot, and the shared base of bisect):
    --machine PRESET   Table I preset to run (default: xiaomi_air13)
    --seed N           Machine seed
    --spans N          Marker/run-until-interrupt spans to execute
    --fault-plan JSON  Fault plan installed before the run
    --inject US:KIND   Inject a one-shot interrupt at US microseconds
                       (kind: timer resched perfmon network gpu keyboard
                       thermal callfunction other; repeatable)

BISECT PER-SIDE FLAGS: --seed-a/--seed-b N,
    --fault-plan-a/--fault-plan-b JSON, --inject-a/--inject-b US:KIND
    (each overrides the shared spec on that side only)

The run report JSON is always printed to stdout. Machine presets:
    xiaomi_air13 lenovo_yangtian lenovo_savior honor_magicbook
    amazon_t2_large amazon_c5_large";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("describe") => cmd_describe(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("bisect") => cmd_bisect(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let names_only = match args {
        [] => false,
        [flag] if flag == "--names" => true,
        _ => return Err(format!("usage: segscope list [--names]\n\n{USAGE}")),
    };
    let registry = attacks::registry();
    let width = registry
        .entries()
        .iter()
        .map(|s| s.name().len())
        .max()
        .unwrap_or(0);
    for entry in registry.entries() {
        if names_only {
            println!("{}", entry.name());
        } else {
            println!("{:width$}  {}", entry.name(), entry.describe());
        }
    }
    Ok(())
}

/// Levenshtein distance between two ASCII-ish names (chars, two-row DP).
fn edit_distance(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut next = vec![0usize; b.len() + 1];
    for (i, ca) in a.chars().enumerate() {
        next[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            next[j + 1] = sub.min(prev[j + 1] + 1).min(next[j] + 1);
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev[b.len()]
}

/// A ` — did you mean \`x\`?` suffix when some candidate is close to
/// `name` (within an edit distance scaled to the name's length), else
/// an empty string.
fn did_you_mean<'a, I>(name: &str, candidates: I) -> String
where
    I: IntoIterator<Item = &'a str>,
{
    let budget = (name.chars().count() / 3).max(2);
    candidates
        .into_iter()
        .map(|c| (edit_distance(name, c), c))
        .filter(|&(d, _)| d <= budget)
        .min()
        .map(|(_, best)| format!(" — did you mean `{best}`?"))
        .unwrap_or_default()
}

/// Looks a scenario up, decorating the unknown-name error with a
/// did-you-mean suggestion over the registry.
fn lookup_scenario(name: &str) -> Result<&'static dyn scenario::DynScenario, String> {
    let registry = attacks::registry();
    registry.get(name).map_err(|e| {
        let names = registry.entries().iter().map(|s| s.name());
        format!("{e}{}", did_you_mean(name, names))
    })
}

/// Resolves a `--defense` / campaign-axis name, with a did-you-mean
/// suggestion on miss.
fn resolve_defense(name: &str) -> Result<segsim::Defense, String> {
    segsim::Defense::by_name(name).ok_or_else(|| {
        format!(
            "unknown defense `{name}` (choose from: {}){}",
            segsim::Defense::NAMES.join(", "),
            did_you_mean(name, segsim::Defense::NAMES),
        )
    })
}

/// Whether a params value has a top-level `machine` map — the field
/// countermeasures ([`segsim::Defense`]) are carried in.
fn has_machine_field(params: &Value) -> bool {
    matches!(params, Value::Map(entries) if entries.iter().any(|(k, _)| k == "machine"))
}

/// Whether a params value has a top-level `streaming` flag — the field
/// streaming-eval-capable scenarios carry (mirrors the
/// defense-applicability probe above).
fn has_streaming_field(params: &Value) -> bool {
    matches!(params, Value::Map(entries) if entries.iter().any(|(k, _)| k == "streaming"))
}

fn cmd_describe(args: &[String]) -> Result<(), String> {
    let [name] = args else {
        return Err(format!("usage: segscope describe <name>\n\n{USAGE}"));
    };
    let entry = lookup_scenario(name)?;
    println!("{}: {}", entry.name(), entry.describe());
    let params = entry.default_params();
    if has_machine_field(&params) {
        println!(
            "defenses: {} (armed via --defense or the config's machine.defense)",
            segsim::Defense::NAMES.join(", ")
        );
    } else {
        println!("defenses: not applicable (config has no `machine` field)");
    }
    if has_streaming_field(&params) {
        println!(
            "streaming eval: supported (set the config's `streaming` flag; \
             verdicts land in the trace as serve_verdict events)"
        );
    } else {
        println!("streaming eval: not applicable (config has no `streaming` field)");
    }
    println!(
        "default params: {}",
        serde_json::to_string(&params).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// Parsed `segscope run` flags.
struct RunArgs {
    name: String,
    params: Option<Value>,
    machine: Option<String>,
    defense: Option<String>,
    opts: RunOptions,
    capacity_set: bool,
    trace_out: Option<String>,
    report_out: Option<String>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut it = args.iter();
    let Some(name) = it.next() else {
        return Err(format!("usage: segscope run <name> [OPTIONS]\n\n{USAGE}"));
    };
    let mut parsed = RunArgs {
        name: name.clone(),
        params: None,
        machine: None,
        defense: None,
        opts: RunOptions::default(),
        capacity_set: false,
        trace_out: None,
        report_out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--seed" => {
                parsed.opts.seed = Some(parse_u64(&value()?, flag)?);
            }
            "--trials" => {
                parsed.opts.trials = Some(parse_u64(&value()?, flag)? as usize);
            }
            "--threads" => {
                let threads = parse_u64(&value()?, flag)? as usize;
                if threads == 0 {
                    return Err("`--threads` must be at least 1".to_owned());
                }
                parsed.opts.threads = Some(threads);
            }
            "--capacity" => {
                parsed.opts.capacity = parse_u64(&value()?, flag)? as usize;
                parsed.capacity_set = true;
            }
            "--params" => {
                let text = value()?;
                let json: Value = serde_json::from_str(&text)
                    .map_err(|e| format!("`--params` is not valid JSON: {e}"))?;
                parsed.params = Some(json);
            }
            "--machine" => {
                parsed.machine = Some(value()?);
            }
            "--defense" => {
                parsed.defense = Some(value()?);
            }
            "--fault-plan" => {
                let text = value()?;
                let plan: segsim::FaultPlan = serde_json::from_str(&text)
                    .map_err(|e| format!("`--fault-plan` is not a valid fault plan: {e}"))?;
                parsed.opts.fault_plan = Some(plan);
            }
            "--trace-out" => {
                parsed.trace_out = Some(value()?);
            }
            "--report" => {
                parsed.report_out = Some(value()?);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok(parsed)
}

fn parse_u64(text: &str, flag: &str) -> Result<u64, String> {
    let digits = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"));
    match digits {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    }
    .map_err(|_| format!("`{flag}` needs an unsigned integer, got `{text}`"))
}

/// Replaces (or inserts) the top-level `machine` key of `params` with the
/// named Table I preset. Scenarios whose config has no `machine` field
/// ignore unknown keys, so the caller warns when that is about to happen.
fn inject_machine(params: &mut Value, preset: &str) -> Result<(), String> {
    let config = segsim::presets::by_name(preset).ok_or_else(|| {
        format!(
            "unknown machine preset `{preset}` (choose from: {})",
            segsim::presets::NAMES.join(", ")
        )
    })?;
    let Value::Map(entries) = params else {
        return Err("scenario params are not a JSON object".to_owned());
    };
    let machine = config.to_value();
    match entries.iter_mut().find(|(k, _)| k == "machine") {
        Some((_, slot)) => *slot = machine,
        None => {
            eprintln!(
                "warning: scenario config has no `machine` field; `--machine {preset}` has no effect"
            );
            entries.push(("machine".to_owned(), machine));
        }
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut parsed = parse_run_args(args)?;
    let entry = lookup_scenario(&parsed.name)?;
    if let Some(preset) = &parsed.machine {
        let mut params = match parsed.params.take() {
            Some(params) => params,
            None => entry.default_params(),
        };
        inject_machine(&mut params, preset)?;
        parsed.params = Some(params);
    }
    // Defense after machine, so the countermeasure lands inside whatever
    // machine the run actually uses.
    if let Some(name) = &parsed.defense {
        let defense = resolve_defense(name)?;
        let mut params = match parsed.params.take() {
            Some(params) => params,
            None => entry.default_params(),
        };
        if !has_machine_field(&params) {
            eprintln!(
                "warning: scenario config has no `machine` field; `--defense {name}` has no effect"
            );
        }
        campaign::inject_defense(&mut params, &defense);
        parsed.params = Some(params);
    }
    if parsed.trace_out.is_some() && !parsed.capacity_set {
        parsed.opts.capacity = 1 << 15;
    }
    if parsed.trace_out.is_none() && parsed.opts.capacity > 0 {
        eprintln!("warning: tracing enabled (--capacity) but no --trace-out; trace is discarded");
    }
    let run = entry
        .run_dyn(parsed.params.as_ref(), &parsed.opts)
        .map_err(|e| match e {
            ScenarioError::Params(msg) => format!(
                "invalid params for `{}`: {msg}\n(see `segscope describe {}`)",
                parsed.name, parsed.name
            ),
            other => other.to_string(),
        })?;
    let report_json = serde_json::to_string(&run.report).map_err(|e| e.to_string())?;
    println!("{report_json}");
    if let Some(path) = &parsed.report_out {
        std::fs::write(path, format!("{report_json}\n"))
            .map_err(|e| format!("cannot write report to `{path}`: {e}"))?;
    }
    if let Some(path) = &parsed.trace_out {
        let sink = run
            .sink
            .as_ref()
            .ok_or_else(|| "no trace collected (is --capacity 0?)".to_owned())?;
        std::fs::write(path, obs::export::chrome_trace(sink))
            .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
    }
    Ok(())
}

/// Parses a `US:KIND` one-shot injection argument (microseconds plus an
/// interrupt-kind name).
fn parse_inject(text: &str, flag: &str) -> Result<InjectedIrq, String> {
    let (us, kind) = text
        .split_once(':')
        .ok_or_else(|| format!("`{flag}` needs US:KIND, got `{text}`"))?;
    let at = irq::Ps::from_us(parse_u64(us, flag)?);
    let kind = match kind.to_ascii_lowercase().as_str() {
        "timer" => irq::InterruptKind::Timer,
        "resched" => irq::InterruptKind::Resched,
        "perfmon" => irq::InterruptKind::PerfMon,
        "network" => irq::InterruptKind::Network,
        "gpu" => irq::InterruptKind::Gpu,
        "keyboard" => irq::InterruptKind::Keyboard,
        "thermal" => irq::InterruptKind::Thermal,
        "callfunction" => irq::InterruptKind::CallFunction,
        "other" => irq::InterruptKind::Other,
        unknown => return Err(format!("`{flag}`: unknown interrupt kind `{unknown}`")),
    };
    Ok(InjectedIrq { at, kind })
}

fn parse_fault_plan(text: &str, flag: &str) -> Result<segsim::FaultPlan, String> {
    serde_json::from_str(text).map_err(|e| format!("`{flag}` is not a valid fault plan: {e}"))
}

/// Applies one shared spec flag to `spec`; `Ok(false)` means the flag is
/// not a spec flag and belongs to the caller.
fn apply_spec_flag(
    spec: &mut RunSpec,
    flag: &str,
    value: &mut dyn FnMut() -> Result<String, String>,
) -> Result<bool, String> {
    match flag {
        "--machine" => spec.machine = value()?,
        "--seed" => spec.seed = parse_u64(&value()?, flag)?,
        "--spans" => spec.spans = parse_u64(&value()?, flag)? as usize,
        "--fault-plan" => spec.fault_plan = Some(parse_fault_plan(&value()?, flag)?),
        "--inject" => spec.inject.push(parse_inject(&value()?, flag)?),
        _ => return Ok(false),
    }
    Ok(true)
}

fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let mut spec = RunSpec::default();
    let mut every = 8usize;
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        if apply_spec_flag(&mut spec, flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--every" => every = parse_u64(&value()?, flag)?.max(1) as usize,
            "--out" => out = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let out = out.ok_or_else(|| "`segscope snapshot` needs --out PATH".to_owned())?;
    let recording = replay::record(&spec, every)?;
    let json = serde_json::to_string(&recording).map_err(|e| e.to_string())?;
    std::fs::write(&out, json + "\n")
        .map_err(|e| format!("cannot write recording to `{out}`: {e}"))?;
    println!(
        "recorded {} events over {} spans ({} snapshot rungs, digest {:#018x}) -> {out}",
        recording.events.len(),
        recording.spec.spans,
        recording.snapshots.len(),
        recording.final_digest,
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let mut input = None;
    let mut from = 0usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--in" => input = Some(value()?),
            "--from" => from = parse_u64(&value()?, flag)? as usize,
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let input = input.ok_or_else(|| "`segscope replay` needs --in PATH".to_owned())?;
    let text = std::fs::read_to_string(&input)
        .map_err(|e| format!("cannot read recording `{input}`: {e}"))?;
    let recording: replay::Recording = serde_json::from_str(&text)
        .map_err(|e| format!("`{input}` is not a valid recording: {e}"))?;
    let slice = replay::replay_from(&recording, from);
    if slice.matches(&recording) {
        println!(
            "replayed {} events from span {} (event {}): bit-identical to the recording",
            slice.events.len(),
            slice.from_span,
            slice.from_event,
        );
        Ok(())
    } else {
        let index = slice.from_event
            + replay::first_divergence(&recording.events[slice.from_event..], &slice.events)
                .expect("mismatch implies a first divergence");
        Err(format!(
            "replay diverged from the recording at event {index} — \
             the recording no longer matches this build's simulator"
        ))
    }
}

fn cmd_bisect(args: &[String]) -> Result<(), String> {
    let mut base = RunSpec::default();
    let mut every = 8usize;
    // Per-side overrides are applied after the shared flags, so order on
    // the command line does not matter.
    let mut seed = [None, None];
    let mut fault = [None, None];
    let mut inject: [Vec<InjectedIrq>; 2] = [Vec::new(), Vec::new()];
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        if apply_spec_flag(&mut base, flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--every" => every = parse_u64(&value()?, flag)?.max(1) as usize,
            "--seed-a" => seed[0] = Some(parse_u64(&value()?, flag)?),
            "--seed-b" => seed[1] = Some(parse_u64(&value()?, flag)?),
            "--fault-plan-a" => fault[0] = Some(parse_fault_plan(&value()?, flag)?),
            "--fault-plan-b" => fault[1] = Some(parse_fault_plan(&value()?, flag)?),
            "--inject-a" => inject[0].push(parse_inject(&value()?, flag)?),
            "--inject-b" => inject[1].push(parse_inject(&value()?, flag)?),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let side = |i: usize| {
        let mut spec = base.clone();
        if let Some(s) = seed[i] {
            spec.seed = s;
        }
        if let Some(p) = fault[i] {
            spec.fault_plan = Some(p);
        }
        spec.inject.extend(inject[i].iter().copied());
        spec
    };
    match replay::bisect(&side(0), &side(1), every)? {
        None => println!("event streams are identical"),
        Some(report) => println!("{report}"),
    }
    Ok(())
}

/// Parsed flags shared by `campaign run` and `campaign resume`.
struct CampaignArgs {
    spec_path: Option<String>,
    out: Option<String>,
    seed: Option<u64>,
    trials: Option<usize>,
    opts: CampaignOptions,
}

fn parse_campaign_args(args: &[String], verb: &str) -> Result<CampaignArgs, String> {
    let mut parsed = CampaignArgs {
        spec_path: None,
        out: None,
        seed: None,
        trials: None,
        opts: CampaignOptions::default(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--spec" => parsed.spec_path = Some(value()?),
            "--out" => parsed.out = Some(value()?),
            "--seed" => parsed.seed = Some(parse_u64(&value()?, flag)?),
            "--trials" => parsed.trials = Some(parse_u64(&value()?, flag)? as usize),
            "--shards" => {
                let shards = parse_u64(&value()?, flag)? as usize;
                if shards == 0 {
                    return Err("`--shards` must be at least 1".to_owned());
                }
                parsed.opts.shards = shards;
            }
            "--threads" => {
                let threads = parse_u64(&value()?, flag)? as usize;
                if threads == 0 {
                    return Err("`--threads` must be at least 1".to_owned());
                }
                parsed.opts.threads = Some(threads);
            }
            "--stop-after-waves" => {
                parsed.opts.stop_after_waves = Some(parse_u64(&value()?, flag)?.max(1) as usize);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if parsed.out.is_none() {
        return Err(format!("`segscope campaign {verb}` needs --out DIR"));
    }
    Ok(parsed)
}

fn campaign_paths(dir: &str) -> (String, String, String) {
    (
        format!("{dir}/spec.json"),
        format!("{dir}/manifest.json"),
        format!("{dir}/report.json"),
    )
}

fn read_campaign_spec(path: &str) -> Result<CampaignSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read campaign spec `{path}`: {e}"))?;
    CampaignSpec::from_json(&text).map_err(|e| format!("`{path}`: {e}"))
}

fn read_campaign_manifest(path: &str) -> Result<CampaignManifest, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read campaign manifest `{path}`: {e}"))?;
    CampaignManifest::from_json(&text).map_err(|e| format!("`{path}`: {e}"))
}

fn write_file(path: &str, contents: String) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Runs (or resumes) the campaign in `dir`, persisting the manifest
/// after every wave; on completion writes `report.json` and prints the
/// summary matrix.
fn drive_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
    manifest: &mut CampaignManifest,
    dir: &str,
) -> Result<(), String> {
    let (_, manifest_path, report_path) = campaign_paths(dir);
    let registry = attacks::registry();
    let mut persist_error = None;
    let outcome = campaign::run_campaign(&registry, spec, opts, manifest, |m| {
        if persist_error.is_none() {
            persist_error = write_file(&manifest_path, m.to_json() + "\n").err();
        }
    })
    .map_err(|e| e.to_string())?;
    if let Some(error) = persist_error {
        return Err(error);
    }
    match outcome {
        None => {
            println!(
                "checkpointed: {}/{} cells complete -> {manifest_path} \
                 (resume with `segscope campaign resume --out {dir}`)",
                manifest.completed_cells(),
                manifest.total_cells(),
            );
        }
        Some(report) => {
            write_file(&report_path, report.to_json() + "\n")?;
            print_campaign_summary(&report);
            println!("report -> {report_path}");
        }
    }
    Ok(())
}

fn print_campaign_summary(report: &CampaignReport) {
    println!(
        "campaign `{}`: {} cells, {} trials, {} ground-truth deliveries, \
         {} delivery faults, {} timing faults",
        report.name,
        report.cells,
        report.totals.trials,
        report.totals.ground_truth_deliveries,
        report.fault_log.delivery_faults(),
        report.fault_log.timing_faults(),
    );
    let width = report
        .matrix
        .iter()
        .map(|r| r.scenario.len())
        .max()
        .unwrap_or(0);
    for row in &report.matrix {
        let accuracy = match row.mean_accuracy {
            Some(mean) => format!("acc {mean:.3}"),
            None => "acc    --".to_owned(),
        };
        println!(
            "  {:width$}  {:16}  {:10}  cells {:3}  trials {:5}  gt {:8}  dfaults {:6}  tfaults {:6}  {accuracy}",
            row.scenario,
            row.preset,
            row.defense,
            row.cells,
            row.trials,
            row.ground_truth_deliveries,
            row.delivery_faults,
            row.timing_faults,
        );
    }
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let Some(verb) = args.first() else {
        return Err(format!(
            "usage: segscope campaign spec|run|status|resume|report ...\n\n{USAGE}"
        ));
    };
    let rest = &args[1..];
    match verb.as_str() {
        "spec" => cmd_campaign_spec(rest),
        "run" => cmd_campaign_run(rest),
        "status" => cmd_campaign_status(rest),
        "resume" => cmd_campaign_resume(rest),
        "report" => cmd_campaign_report(rest),
        other => Err(format!("unknown campaign verb `{other}`\n\n{USAGE}")),
    }
}

fn cmd_campaign_spec(args: &[String]) -> Result<(), String> {
    let mut seed = 0x5E65_C09Eu64;
    let mut out = None;
    let mut matrix = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--seed" => seed = parse_u64(&value()?, flag)?,
            "--out" => out = Some(value()?),
            "--defense-matrix" => matrix = true,
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let spec = if matrix {
        CampaignSpec::defense_matrix(seed)
    } else {
        CampaignSpec::full_grid(seed)
    };
    let json = spec.to_json();
    match out {
        Some(path) => {
            write_file(&path, json + "\n")?;
            println!("{} campaign spec -> {path}", spec.name);
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_campaign_run(args: &[String]) -> Result<(), String> {
    let parsed = parse_campaign_args(args, "run")?;
    let dir = parsed.out.expect("checked by parse_campaign_args");
    let mut spec = match &parsed.spec_path {
        Some(path) => read_campaign_spec(path)?,
        None => CampaignSpec::full_grid(parsed.seed.unwrap_or(0x5E65_C09E)),
    };
    if let Some(seed) = parsed.seed {
        spec.seed = seed;
    }
    if let Some(trials) = parsed.trials {
        spec.trials = Some(trials);
    }
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
    let (spec_path, manifest_path, _) = campaign_paths(&dir);
    // The resolved spec (with any --seed/--trials overrides baked in) is
    // persisted first, so resume/status/report always see the grid the
    // manifest was cut for.
    write_file(&spec_path, spec.to_json() + "\n")?;
    let mut manifest = CampaignManifest::new(&spec);
    write_file(&manifest_path, manifest.to_json() + "\n")?;
    drive_campaign(&spec, &parsed.opts, &mut manifest, &dir)
}

fn cmd_campaign_resume(args: &[String]) -> Result<(), String> {
    let parsed = parse_campaign_args(args, "resume")?;
    if parsed.seed.is_some() || parsed.trials.is_some() {
        return Err(
            "`campaign resume` cannot override --seed/--trials — they are part of the \
             persisted spec"
                .to_owned(),
        );
    }
    let dir = parsed.out.expect("checked by parse_campaign_args");
    let (spec_path, manifest_path, _) = campaign_paths(&dir);
    let spec = match &parsed.spec_path {
        Some(path) => read_campaign_spec(path)?,
        None => read_campaign_spec(&spec_path)?,
    };
    let mut manifest = read_campaign_manifest(&manifest_path)?;
    drive_campaign(&spec, &parsed.opts, &mut manifest, &dir)
}

fn cmd_campaign_status(args: &[String]) -> Result<(), String> {
    let parsed = parse_campaign_args(args, "status")?;
    let dir = parsed.out.expect("checked by parse_campaign_args");
    let (spec_path, manifest_path, _) = campaign_paths(&dir);
    let spec = read_campaign_spec(&spec_path)?;
    let manifest = read_campaign_manifest(&manifest_path)?;
    if !manifest.matches(&spec) {
        return Err(campaign::CampaignError::SpecMismatch.to_string());
    }
    println!(
        "campaign `{}`: {}/{} cells complete ({})",
        spec.name,
        manifest.completed_cells(),
        manifest.total_cells(),
        if manifest.is_complete() {
            "done — see report.json"
        } else {
            "resume with `segscope campaign resume`"
        },
    );
    Ok(())
}

fn cmd_campaign_report(args: &[String]) -> Result<(), String> {
    let parsed = parse_campaign_args(args, "report")?;
    let dir = parsed.out.expect("checked by parse_campaign_args");
    let (spec_path, manifest_path, report_path) = campaign_paths(&dir);
    let spec = read_campaign_spec(&spec_path)?;
    let manifest = read_campaign_manifest(&manifest_path)?;
    let report = campaign::report_from_manifest(&spec, &manifest).map_err(|e| e.to_string())?;
    write_file(&report_path, report.to_json() + "\n")?;
    print_campaign_summary(&report);
    println!("report -> {report_path}");
    Ok(())
}

/// `segscope serve-bench` report. Every field is a pure function of the
/// flags (no timing), so CI compares the whole JSON line against a
/// golden.
#[derive(Serialize)]
struct ServeBenchReport {
    /// Concurrent sessions served.
    sessions: usize,
    /// Timesteps per session (the website config's pooled length).
    steps_per_session: usize,
    /// Batcher lane capacity.
    capacity: usize,
    /// FNV-1a identity of the f64 verdict sequence (batched verified
    /// identical to sequential before printing).
    verdict_fnv: String,
    /// Quantization scheme of the quantized arm.
    quant: String,
    /// FNV-1a identity of the quantized verdict sequence.
    quant_verdict_fnv: String,
    /// Fraction of sessions where the quantized verdict agrees with f64.
    quant_agreement: f64,
}

/// Auxiliary stream of the serve-bench model (distinct from every
/// scenario stream).
const SERVE_BENCH_STREAM: u64 = 0x5EBE;

fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    let mut sessions = 12usize;
    let mut capacity = 8usize;
    let mut scheme = serve::QuantScheme::I16;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--sessions" => {
                sessions = parse_u64(&value()?, flag)? as usize;
                if sessions == 0 {
                    return Err("`--sessions` must be at least 1".to_owned());
                }
            }
            "--capacity" => {
                capacity = parse_u64(&value()?, flag)? as usize;
                if capacity == 0 {
                    return Err("`--capacity` must be at least 1".to_owned());
                }
            }
            "--quant" => {
                scheme = match value()?.as_str() {
                    "i8" => serve::QuantScheme::I8,
                    "i16" => serve::QuantScheme::I16,
                    other => return Err(format!("`--quant` must be i8 or i16, got `{other}`")),
                };
            }
            "--out" => out = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    use attacks::website::{Browser, Setting, WebsiteFpConfig};
    let config = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
    // One fixed-seed website trace per session, round-robin over sites;
    // the trial seeds mirror the scenario driver's derivation.
    let traces: Vec<Vec<Vec<f32>>> = (0..sessions)
        .map(|i| {
            let site = i % config.n_sites;
            let trace = attacks::website::collect_trace(
                &config,
                site,
                segscope_repro::exec::derive_seed(config.seed, i as u64),
            );
            attacks::website::trace_to_example(&trace, config.pooled_len, site).xs
        })
        .collect();
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(segscope_repro::exec::derive_seed(
        config.seed,
        SERVE_BENCH_STREAM,
    ));
    let model = segscope_repro::nnet::SeqClassifier::new(
        2,
        config.hidden,
        config.n_sites,
        &mut rng,
        segscope_repro::nnet::AdamConfig::default(),
    );
    let sequential = serve::serve_sequential(&model, &traces);
    let batched = serve::serve_batched(&model, &traces, capacity);
    if batched != sequential {
        return Err(format!(
            "batched serving diverged from sequential at capacity {capacity} — \
             the serve parity contract is broken"
        ));
    }
    let quantized = serve::QuantizedSeqClassifier::quantize(&model, scheme);
    let q_sequential = serve::serve_sequential(&quantized, &traces);
    let q_batched = serve::serve_batched(&quantized, &traces, capacity);
    if q_batched != q_sequential {
        return Err(format!(
            "quantized batched serving diverged from sequential at capacity {capacity}"
        ));
    }
    let agree = sequential
        .iter()
        .zip(&q_sequential)
        .filter(|(a, b)| a.class == b.class)
        .count();
    let report = ServeBenchReport {
        sessions,
        steps_per_session: config.pooled_len,
        capacity,
        verdict_fnv: format!("0x{:016x}", serve::verdict_fnv(&sequential)),
        quant: scheme.name().to_owned(),
        quant_verdict_fnv: format!("0x{:016x}", serve::verdict_fnv(&q_sequential)),
        quant_agreement: agree as f64 / sessions as f64,
    };
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    println!("{json}");
    if let Some(path) = &out {
        write_file(path, format!("{json}\n"))?;
    }
    Ok(())
}
