//! `segscope-repro` — the umbrella crate of the SegScope (HPCA 2024)
//! reproduction.
//!
//! This crate re-exports the whole workspace so the examples and
//! integration tests have a single dependency, plus the [`replay`]
//! module — record-and-replay and divergence bisection over whole
//! machine runs, which needs every layer and so lives at the top:
//!
//! * [`exec`] — the deterministic parallel experiment engine;
//! * [`x86seg`] — segmentation semantics (selectors, Algorithm 1);
//! * [`irq`] — interrupt fabric, handler-cost model, ground truth;
//! * [`memsim`] — caches, TLB, KASLR layout;
//! * [`specsim`] — branch prediction, Spectre gadget, umonitor/umwait;
//! * [`obs`] — the deterministic observability layer (typed event
//!   traces, metrics, Chrome `trace_event` export);
//! * [`segsim`] — the machine simulator tying the substrates together;
//! * [`segscope`] — the paper's contribution: the probe, the guard, the
//!   timer, and the timer-based baselines;
//! * [`nnet`] — the LSTM/BiLSTM classifiers;
//! * [`serve`] — the streaming inference engine: cross-session SoA
//!   batching, lane recycling, and i8/i16 post-training quantization,
//!   bit-identical to the batch classifier;
//! * [`scenario`] — the uniform `Scenario` trait, generic deterministic
//!   driver, and registry machinery behind the `segscope` CLI;
//! * [`attacks`] — the six end-to-end case studies plus three extension
//!   studies, all registered as scenarios;
//! * [`campaign`] — the fleet-scale campaign engine: sharded, resumable
//!   parameter-grid sweeps over the registry.
//!
//! See `README.md` for a tour and `DESIGN.md` for the per-experiment
//! index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;

pub use campaign;
pub use exec;
pub use irq;
pub use memsim;
pub use nnet;
pub use obs;
pub use scenario;
pub use segscope;
pub use segsim;
pub use serve;
pub use specsim;
pub use x86seg;

/// The case-study crate, re-exported under its module name.
pub use segscope_attacks as attacks;
