//! Record-and-replay and automatic divergence bisection over machine
//! runs.
//!
//! The workflow mirrors `rr`-style debugging, shrunk to the simulator's
//! determinism contract:
//!
//! 1. [`record`] drives a [`RunSpec`]'s machine through the standard
//!    span workload with a trace sink installed, keeping every emitted
//!    [`obs::Event`] plus a periodic ladder of restore-exact
//!    [`segsim::Snapshot`]s, each tagged with the event index and the
//!    cumulative [`obs::EventDigest`] at the instant it was taken.
//! 2. [`replay_from`] re-executes from the nearest snapshot at or
//!    before any event index — seconds of simulated time instead of
//!    re-running the whole trial — and reproduces the recorded tail
//!    bit-identically.
//! 3. [`bisect`] takes two specs, binary-searches their aligned
//!    snapshot ladders by digest to bracket the first disagreeing
//!    stretch, then compares events one-by-one inside the bracket and
//!    reports the first diverging event: its index, both sides' kinds,
//!    timestamps, and lanes.
//!
//! Everything here rests on two invariants proved elsewhere: snapshots
//! are restore-exact (`tests/snapshot_roundtrip.rs`), and tracing is
//! RNG- and timing-neutral, so a recorded run takes the exact same
//! trajectory as an untraced one.

use irq::{InterruptKind, Ps};
use segsim::{presets, FaultPlan, Machine, Snapshot};
use serde::{Deserialize, Serialize};
use std::fmt;
use x86seg::{PrivilegeLevel, Selector};

/// Ring capacity installed per span; large enough that a single span
/// (one kernel entry plus governor activity) can never overflow it.
const SPAN_SINK_CAPACITY: usize = 4096;

/// One additional one-shot interrupt a [`RunSpec`] injects before the
/// run starts — the minimal perturbation the bisector is asked to
/// localize.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedIrq {
    /// Absolute simulated delivery time.
    pub at: Ps,
    /// Interrupt kind to deliver.
    pub kind: InterruptKind,
}

/// A complete, serializable description of one recordable run.
///
/// Two specs plus the standard workload determine two event streams; a
/// spec is what `segscope bisect` takes one of per side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Table I preset name (see [`segsim::presets::NAMES`]).
    pub machine: String,
    /// Machine seed.
    pub seed: u64,
    /// Number of marker/run-until-interrupt spans to execute.
    pub spans: usize,
    /// Optional fault plan installed before the run.
    pub fault_plan: Option<FaultPlan>,
    /// One-shot interrupts injected before the run starts.
    pub inject: Vec<InjectedIrq>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            machine: "xiaomi_air13".to_owned(),
            seed: 0x5E65C0,
            spans: 48,
            fault_plan: None,
            inject: Vec::new(),
        }
    }
}

/// One rung of the snapshot ladder: a restore-exact machine image plus
/// the position in the event stream it corresponds to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotPoint {
    /// Spans completed when the snapshot was taken.
    pub span: usize,
    /// Events recorded when the snapshot was taken (the snapshot sits
    /// *between* `events[event_index - 1]` and `events[event_index]`).
    pub event_index: usize,
    /// Cumulative digest of `events[..event_index]`.
    pub digest: u64,
    /// The machine image itself.
    pub snapshot: Snapshot,
}

/// The full product of [`record`]: the spec, every event the run
/// emitted, and the snapshot ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    /// The spec that produced this recording.
    pub spec: RunSpec,
    /// Every event the run emitted, in order.
    pub events: Vec<obs::Event>,
    /// Snapshot ladder, ascending by span/event index; always contains
    /// the initial (span 0, event 0) rung.
    pub snapshots: Vec<SnapshotPoint>,
    /// Digest of the complete event stream.
    pub final_digest: u64,
}

impl Recording {
    /// The snapshot-ladder rung nearest at-or-before `event_index`.
    #[must_use]
    pub fn nearest_snapshot(&self, event_index: usize) -> &SnapshotPoint {
        self.snapshots
            .iter()
            .rev()
            .find(|p| p.event_index <= event_index)
            .expect("ladder always contains the (span 0, event 0) rung")
    }
}

/// The tail a [`replay_from`] call re-executed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySlice {
    /// Span the replay resumed at.
    pub from_span: usize,
    /// Event index the replay resumed at.
    pub from_event: usize,
    /// The re-executed events (`recording.events[from_event..]` when
    /// the replay reproduces the recording, which [`ReplaySlice::matches`]
    /// checks).
    pub events: Vec<obs::Event>,
}

impl ReplaySlice {
    /// Whether the replayed tail is bit-identical to the recording's.
    #[must_use]
    pub fn matches(&self, recording: &Recording) -> bool {
        recording.events[self.from_event..] == self.events[..]
    }
}

/// The bisector's verdict: the first event at which two runs disagree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Index of the first diverging event (equal to the shorter
    /// stream's length when one stream is a strict prefix of the other).
    pub index: usize,
    /// Side A's event at that index (`None`: stream A ended).
    pub a: Option<obs::Event>,
    /// Side B's event at that index (`None`: stream B ended).
    pub b: Option<obs::Event>,
    /// The last span boundary at which both runs still agreed (the
    /// bracket the binary search narrowed to).
    pub agreed_through_span: usize,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |e: &Option<obs::Event>| match e {
            Some(e) => format!("at_ps={} lane={} kind={:?}", e.at_ps, e.track, e.kind),
            None => "<stream ended>".to_owned(),
        };
        writeln!(
            f,
            "first divergence at event {} (runs agree through span {}):",
            self.index, self.agreed_through_span
        )?;
        writeln!(f, "  a: {}", side(&self.a))?;
        write!(f, "  b: {}", side(&self.b))
    }
}

/// First index at which two slices disagree: the first elementwise
/// mismatch, or the shorter length when one is a strict prefix of the
/// other. `None` means the slices are equal.
///
/// This is the primitive the workspace's trace-equality tests report
/// failures through — a pinpointed index beats a thousand-line diff.
#[must_use]
pub fn first_divergence<T: PartialEq>(a: &[T], b: &[T]) -> Option<usize> {
    let shared = a.len().min(b.len());
    (0..shared)
        .find(|&i| a[i] != b[i])
        .or_else(|| (a.len() != b.len()).then_some(shared))
}

/// Builds the spec's machine: preset lookup, seed, fault plan, injected
/// one-shots.
fn boot(spec: &RunSpec) -> Result<Machine, String> {
    let config = presets::by_name(&spec.machine).ok_or_else(|| {
        format!(
            "unknown machine preset `{}` (expected one of: {})",
            spec.machine,
            presets::NAMES.join(", ")
        )
    })?;
    let mut machine = Machine::new(config, spec.seed);
    if spec.fault_plan.is_some() {
        machine.set_fault_plan(spec.fault_plan);
    }
    if !spec.inject.is_empty() {
        machine.inject_interrupts(spec.inject.iter().map(|i| (i.at, i.kind)));
    }
    Ok(machine)
}

/// Runs one standard span on `machine`, appending its events to `out`.
///
/// The workload is the golden-trace span: park the 0x2 marker in GS,
/// run user code until the next interrupt. A fresh sink per span keeps
/// the event stream complete (no ring overwrites) without unbounded
/// memory in the machine.
fn run_span(machine: &mut Machine, out: &mut Vec<obs::Event>) {
    machine.install_trace_sink(obs::TraceSink::with_capacity(SPAN_SINK_CAPACITY));
    machine
        .wrgs(Selector::null_with_rpl(PrivilegeLevel::Ring2))
        .expect("presets never restrict segment writes");
    let _ = machine.run_user_until(Ps::MAX);
    let sink = machine.take_trace_sink().expect("sink installed above");
    assert_eq!(sink.dropped(), 0, "span overflowed the per-span sink");
    out.extend(sink.events());
}

/// Records `spec`'s run: every event, plus a snapshot every
/// `snapshot_every` spans (clamped to ≥ 1).
///
/// # Errors
///
/// Returns a message for an unknown machine preset.
pub fn record(spec: &RunSpec, snapshot_every: usize) -> Result<Recording, String> {
    let every = snapshot_every.max(1);
    let mut machine = boot(spec)?;
    let mut events = Vec::new();
    let mut digest = obs::EventDigest::new();
    let mut digested = 0;
    let mut snapshots = Vec::new();
    for span in 0..spec.spans {
        if span % every == 0 {
            for event in &events[digested..] {
                digest.update(event);
            }
            digested = events.len();
            snapshots.push(SnapshotPoint {
                span,
                event_index: events.len(),
                digest: digest.finish(),
                snapshot: machine.snapshot(),
            });
        }
        run_span(&mut machine, &mut events);
    }
    for event in &events[digested..] {
        digest.update(event);
    }
    Ok(Recording {
        spec: spec.clone(),
        events,
        snapshots,
        final_digest: digest.finish(),
    })
}

/// Re-executes `recording` from the nearest snapshot at or before
/// `event_index`, returning the re-generated tail.
///
/// The returned slice starts at the snapshot's event index (≤
/// `event_index`), and [`ReplaySlice::matches`] confirms it reproduces
/// the recording bit-identically — the restore-exactness contract,
/// exercised end-to-end.
#[must_use]
pub fn replay_from(recording: &Recording, event_index: usize) -> ReplaySlice {
    let point = recording.nearest_snapshot(event_index.min(recording.events.len()));
    let mut machine = Machine::from_snapshot(&point.snapshot);
    let mut events = Vec::new();
    for _ in point.span..recording.spec.spans {
        run_span(&mut machine, &mut events);
    }
    ReplaySlice {
        from_span: point.span,
        from_event: point.event_index,
        events,
    }
}

/// Records both specs and localizes their first diverging event.
///
/// The snapshot ladders are aligned by span index; a binary search over
/// the rungs' cumulative digests finds the last span boundary where the
/// streams still agree (equal digests over equal event counts mean the
/// serialized prefixes are identical), and only the events past that
/// boundary are compared one-by-one. `Ok(None)` means the two event
/// streams are identical.
///
/// # Errors
///
/// Returns a message when either spec names an unknown machine preset.
pub fn bisect(
    a: &RunSpec,
    b: &RunSpec,
    snapshot_every: usize,
) -> Result<Option<DivergenceReport>, String> {
    let ra = record(a, snapshot_every)?;
    let rb = record(b, snapshot_every)?;
    Ok(bisect_recordings(&ra, &rb))
}

/// [`bisect`] over two already-captured recordings.
#[must_use]
pub fn bisect_recordings(ra: &Recording, rb: &Recording) -> Option<DivergenceReport> {
    if ra.events == rb.events {
        return None;
    }
    // Binary search the aligned ladder rungs for the last span boundary
    // whose cumulative digests (over equal event counts) agree. Rung 0
    // is (span 0, event 0) on both sides, which agrees trivially.
    let rungs = ra.snapshots.len().min(rb.snapshots.len());
    let agree = |i: usize| {
        let (pa, pb) = (&ra.snapshots[i], &rb.snapshots[i]);
        pa.span == pb.span && pa.event_index == pb.event_index && pa.digest == pb.digest
    };
    let (mut lo, mut hi) = (0, rungs - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if agree(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let from = ra.snapshots[lo].event_index;
    let index = from
        + first_divergence(&ra.events[from..], &rb.events[from..])
            .expect("streams differ, so a divergence exists past the last agreeing rung");
    Some(DivergenceReport {
        index,
        a: ra.events.get(index).copied(),
        b: rb.events.get(index).copied(),
        agreed_through_span: ra.snapshots[lo].span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> RunSpec {
        RunSpec {
            machine: "lenovo_savior".to_owned(),
            seed,
            spans: 24,
            fault_plan: None,
            inject: Vec::new(),
        }
    }

    #[test]
    fn record_produces_a_ladder_and_a_stable_digest() {
        let recording = record(&spec(7), 6).unwrap();
        assert!(!recording.events.is_empty());
        assert_eq!(recording.snapshots.len(), 4, "spans 0, 6, 12, 18");
        assert_eq!(recording.snapshots[0].event_index, 0);
        assert_eq!(
            recording.final_digest,
            obs::digest_events(&recording.events)
        );
        for point in &recording.snapshots {
            assert_eq!(
                point.digest,
                obs::digest_events(&recording.events[..point.event_index])
            );
        }
        // Recording is deterministic end to end.
        assert_eq!(record(&spec(7), 6).unwrap(), recording);
    }

    #[test]
    fn replay_reproduces_the_tail_from_every_rung() {
        let recording = record(&spec(11), 5).unwrap();
        for target in [
            0,
            1,
            recording.events.len() / 2,
            recording.events.len().saturating_sub(1),
            recording.events.len(),
        ] {
            let slice = replay_from(&recording, target);
            assert!(slice.from_event <= target);
            assert!(
                slice.matches(&recording),
                "replay from event {target} (span {}) diverged",
                slice.from_span
            );
        }
    }

    #[test]
    fn recording_round_trips_through_json() {
        let recording = record(&spec(3), 8).unwrap();
        let json = serde_json::to_string(&recording).unwrap();
        let back: Recording = serde_json::from_str(&json).unwrap();
        assert_eq!(back, recording);
        // And a replay of the revived recording still verifies.
        assert!(replay_from(&back, back.events.len() / 2).matches(&back));
    }

    #[test]
    fn bisect_of_identical_specs_reports_no_divergence() {
        assert_eq!(bisect(&spec(5), &spec(5), 4).unwrap(), None);
    }

    #[test]
    fn bisect_localizes_a_single_injected_fault() {
        let a = spec(9);
        let mut b = spec(9);
        // One extra interrupt well into the run: everything before it
        // must agree, and the report must point at its delivery.
        b.inject.push(InjectedIrq {
            at: Ps::from_ms(40),
            kind: InterruptKind::Gpu,
        });
        let report = bisect(&a, &b, 4).unwrap().expect("streams differ");
        let ra = record(&a, 4).unwrap();
        let rb = record(&b, 4).unwrap();
        assert_eq!(
            Some(report.index),
            first_divergence(&ra.events, &rb.events),
            "bisection must agree with the brute-force scan"
        );
        assert!(report.index > 0, "runs agree before the injection");
        assert_eq!(report.a, ra.events.get(report.index).copied());
        assert_eq!(report.b, rb.events.get(report.index).copied());
        let shown = report.to_string();
        assert!(shown.contains(&format!("event {}", report.index)));
    }

    #[test]
    fn first_divergence_covers_prefixes_and_equality() {
        assert_eq!(first_divergence(&[1, 2, 3], &[1, 2, 3]), None);
        assert_eq!(first_divergence(&[1, 2, 3], &[1, 9, 3]), Some(1));
        assert_eq!(first_divergence(&[1, 2], &[1, 2, 3]), Some(2));
        assert_eq!(first_divergence::<u8>(&[], &[]), None);
    }
}
