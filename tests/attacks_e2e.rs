//! End-to-end case-study integration tests (reduced scales of the
//! paper's Section IV experiments).

use segscope_repro::attacks::kaslr::{break_kaslr_fresh, KaslrConfig, ProbeMethod};
use segscope_repro::attacks::spectral::{run_attack, SpectralConfig, SpectralMode};
use segscope_repro::attacks::spectre::{leak_secret, SpectreConfig};
use segscope_repro::attacks::website::{collect_trace, Browser, Setting, WebsiteFpConfig};
use segscope_repro::segsim::MachineConfig;

/// Paper C2: SegScope filtering cuts Spectral's interrupt-induced error
/// rate by well over an order of magnitude.
#[test]
fn spectral_error_reduction_holds() {
    let config = SpectralConfig::paper_default();
    let original = run_attack(&config, SpectralMode::Original, 20_000, 0xE2E1);
    let enhanced = run_attack(&config, SpectralMode::Enhanced, 20_000, 0xE2E1);
    assert!(
        original.error_rate > 0.001,
        "original error {}",
        original.error_rate
    );
    assert!(
        enhanced.error_rate * 10.0 < original.error_rate,
        "reduction too weak: {} -> {}",
        original.error_rate,
        enhanced.error_rate
    );
}

/// Paper C3: KASLR falls to the SegScope timer in ~10–20 simulated
/// seconds at C = 5 — with `CR4.TSD` set, so no architectural timer was
/// available.
#[test]
fn kaslr_breaks_under_timer_constraints() {
    let config = KaslrConfig {
        c: 5,
        ..KaslrConfig::paper_default()
    };
    let machine = MachineConfig::xiaomi_air13().with_cr4_tsd(true);
    let result = break_kaslr_fresh(machine, &config, 0xE2E2).expect("segscope timer works");
    assert!(result.top_n_hit(5), "secret not in top-5");
    assert!(
        result.elapsed_s < 60.0,
        "attack should take tens of seconds, took {:.1}",
        result.elapsed_s
    );
}

/// Both probing methods work (paper Figs. 10 and 11 — access and
/// prefetch).
#[test]
fn both_kaslr_methods_work() {
    for method in [ProbeMethod::Access, ProbeMethod::Prefetch] {
        let config = KaslrConfig {
            method,
            c: 5,
            slots: 128,
            ..KaslrConfig::paper_default()
        };
        let result =
            break_kaslr_fresh(MachineConfig::lenovo_yangtian(), &config, 0xE2E3).expect("works");
        assert!(result.top_n_hit(5), "{method:?}: secret missed");
    }
}

/// Paper Section IV-F: a short secret leaks through Spectre + F+R with
/// the SegScope timer, majority-correct.
#[test]
fn spectre_leaks_bytes() {
    let result = leak_secret(b"OK", &SpectreConfig::quick(), 0xE2E4).expect("leak runs");
    assert!(
        result.success_rate >= 0.5,
        "success {}",
        result.success_rate
    );
}

/// Website traces are reproducible per (site, seed) and distinct across
/// sites — the property the classifier depends on.
#[test]
fn website_traces_are_deterministic_and_site_specific() {
    let config = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
    let a1 = collect_trace(&config, 3, 42);
    let a2 = collect_trace(&config, 3, 42);
    assert_eq!(a1, a2, "same site + seed => identical trace");
    let b = collect_trace(&config, 4, 42);
    assert_ne!(a1, b, "different sites => different traces");
}

/// Tor and Chrome produce measurably different traces for the same site
/// (the defense degrades but does not erase the signal — paper
/// Table IV).
#[test]
fn tor_changes_the_signal_without_erasing_it() {
    let chrome_cfg = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
    let tor_cfg = WebsiteFpConfig::quick(Browser::Tor, Setting::DifferentCores);
    let chrome = collect_trace(&chrome_cfg, 5, 99);
    let tor = collect_trace(&tor_cfg, 5, 99);
    assert_ne!(chrome, tor);
    // Both traces still carry activity (non-constant SegCnt).
    let spread = |xs: &[f64]| {
        let mn = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        mx - mn
    };
    assert!(spread(&chrome) > 0.0);
    assert!(spread(&tor) > 0.0);
}
