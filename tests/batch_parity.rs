//! Workspace-level batched-vs-scalar parity: the batched execution path
//! must be architecturally invisible at every layer it touches.
//!
//! Two differential oracles:
//!
//! 1. [`MachineBatch`] lanes with *random per-lane configurations*
//!    (vendor preset × fault plan × seed) at the required batch sizes
//!    1, 4, 17, and 64 produce the same probe samples, the same
//!    [`FaultLog`]s, and the same final RNG positions as scalar
//!    [`Machine`]s run one by one.
//! 2. A scenario's recycled-lane `run_batch` override (the KASLR break)
//!    matches the per-trial `build_machine` + `run_trial` path at the
//!    same chunk sizes, output for output and delivery for delivery.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use segscope_repro::attacks::kaslr::{KaslrConfig, KaslrScenario, KaslrScenarioConfig};
use segscope_repro::irq::time::Ps;
use segscope_repro::replay::first_divergence;
use segscope_repro::scenario::{Scenario, TrialCtx};
use segscope_repro::segsim::{FaultPlan, Machine, MachineBatch, MachineConfig};
use segscope_repro::x86seg::Selector;

/// The chunk/batch sizes the batched path must be transparent at: a
/// degenerate single lane, a small chunk, a prime that never divides the
/// workload evenly, and a full-width batch.
const REQUIRED_SIZES: [usize; 4] = [1, 4, 17, 64];

/// Draws one per-lane `(config, seed)` pair: vendor preset × fault plan
/// × seed, all from a dedicated generator rng so the draws never touch
/// the machine streams under test.
fn draw_lane(rng: &mut SmallRng) -> (MachineConfig, u64) {
    let presets = MachineConfig::table1();
    let mut config = presets[rng.gen_range(0..presets.len())].clone();
    config = match rng.gen_range(0u8..4) {
        0 => config, // no plan
        1 => config.with_fault_plan(FaultPlan::timing_storm()),
        2 => config.with_fault_plan(FaultPlan::delivery_storm()),
        _ => config.with_fault_plan(
            FaultPlan::none()
                .with_drop_prob(0.08)
                .with_duplicate_prob(0.04),
        ),
    };
    (config, rng.gen::<u64>())
}

/// Runs the shared probe workload on a batch, returning the per-lane
/// sample series (one `Vec<u16>` of rdgs samples per lane).
fn drive_batch(batch: &mut MachineBatch, rounds: usize) -> Vec<Vec<u16>> {
    let mut samples = vec![Vec::new(); batch.len()];
    for round in 0..rounds {
        let sel = Selector::from_bits(1 + (round % 3) as u16);
        batch.wrgs_all(sel).expect("flat selectors load");
        batch.spin_all(3_000 + (round as u64 % 7) * 500);
        for (lane, &bits) in batch.rdgs_all().iter().enumerate() {
            samples[lane].push(bits);
        }
        if round % 5 == 4 {
            let deadline =
                batch.nows().iter().copied().max().unwrap_or(Ps::ZERO) + Ps::from_us(400);
            batch.run_all_until(deadline);
        }
    }
    samples
}

/// Runs the identical workload on one scalar machine.
fn drive_scalar(machine: &mut Machine, rounds: usize, deadlines: &[Ps]) -> Vec<u16> {
    let mut samples = Vec::new();
    let mut next_deadline = deadlines.iter();
    for round in 0..rounds {
        let sel = Selector::from_bits(1 + (round % 3) as u16);
        machine.wrgs(sel).expect("flat selectors load");
        machine.spin(3_000 + (round as u64 % 7) * 500);
        samples.push(machine.rdgs().bits());
        if round % 5 == 4 {
            let deadline = *next_deadline.next().expect("deadline per barrier round");
            while machine.now() < deadline {
                let _ = machine.run_user_until(deadline);
            }
        }
    }
    samples
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// At every required batch size, random heterogeneous lanes match
    /// scalar machines sample for sample, fault for fault, and draw for
    /// draw.
    #[test]
    fn batched_lanes_match_scalar_at_required_sizes(
        seed in 0u64..1_000_000,
        rounds in 10usize..25,
    ) {
        for &size in &REQUIRED_SIZES {
            let mut gen_rng = SmallRng::seed_from_u64(seed ^ 0x5ca1_ab1e);
            let lanes: Vec<(MachineConfig, u64)> =
                (0..size).map(|_| draw_lane(&mut gen_rng)).collect();

            let mut batch = MachineBatch::from_configs(lanes.clone());
            let batch_samples = drive_batch(&mut batch, rounds);

            // Replay the barrier deadlines the batch actually used: the
            // scalar replay must chase the same absolute instants even
            // though it cannot see the other lanes' clocks.
            let mut replay = MachineBatch::from_configs(lanes.clone());
            let mut deadlines = Vec::new();
            for round in 0..rounds {
                let sel = Selector::from_bits(1 + (round % 3) as u16);
                replay.wrgs_all(sel).expect("flat selectors load");
                replay.spin_all(3_000 + (round as u64 % 7) * 500);
                let _ = replay.rdgs_all();
                if round % 5 == 4 {
                    let deadline = replay.nows().iter().copied().max().unwrap_or(Ps::ZERO)
                        + Ps::from_us(400);
                    deadlines.push(deadline);
                    replay.run_all_until(deadline);
                }
            }

            for (i, (config, lane_seed)) in lanes.iter().enumerate() {
                let mut scalar = Machine::new(config.clone(), *lane_seed);
                let scalar_samples = drive_scalar(&mut scalar, rounds, &deadlines);
                // Stream comparisons report the first diverging index
                // and both sides, not whole-vector inequality.
                if let Some(at) = first_divergence(&scalar_samples, &batch_samples[i]) {
                    prop_assert!(
                        false,
                        "size {} lane {}: samples first diverge at round {}: \
                         scalar {:?} vs batched {:?}",
                        size, i, at,
                        scalar_samples.get(at), batch_samples[i].get(at)
                    );
                }
                prop_assert_eq!(
                    scalar.fault_log(), batch.lane(i).fault_log(),
                    "size {} lane {} fault log", size, i
                );
                if let Some(at) = first_divergence(
                    scalar.ground_truth().records(),
                    batch.lane(i).ground_truth().records(),
                ) {
                    prop_assert!(
                        false,
                        "size {} lane {}: deliveries first diverge at record {}: \
                         scalar {:?} vs batched {:?}",
                        size, i, at,
                        scalar.ground_truth().records().get(at),
                        batch.lane(i).ground_truth().records().get(at)
                    );
                }
                prop_assert_eq!(
                    scalar.rng_mut().gen::<u64>(),
                    batch.with_lane_mut(i, |l| l.rng_mut().gen::<u64>()),
                    "size {} lane {} RNG position", size, i
                );
            }
        }
    }
}

/// The KASLR scenario's recycled-lane `run_batch` override returns the
/// same outputs and ground-truth delivery counts as the per-trial
/// fresh-machine path, at every required chunk size.
#[test]
fn scenario_run_batch_matches_per_trial_path_at_required_sizes() {
    let scenario = KaslrScenario;
    let config = KaslrScenarioConfig {
        machine: MachineConfig::lenovo_yangtian(),
        attack: KaslrConfig {
            slots: 8,
            c: 1,
            k: 8,
            calibration: 16,
            ..KaslrConfig::paper_default()
        },
    };
    for &size in &REQUIRED_SIZES {
        let ctxs: Vec<TrialCtx> = (0..size)
            .map(|index| TrialCtx {
                index,
                seed: segscope_repro::exec::derive_seed(0xBA7C_9A51, index as u64),
                experiment_seed: 0xBA7C_9A51,
            })
            .collect();
        let batched = scenario.run_batch(&config, &ctxs, None);
        let reference: Vec<_> = ctxs
            .iter()
            .map(|ctx| {
                let mut machine = scenario.build_machine(&config, ctx);
                let output = scenario.run_trial(&config, &mut machine, ctx);
                (output, segscope_repro::scenario::TrialStats::of(&machine))
            })
            .collect();
        if let Some(at) = first_divergence(&batched, &reference) {
            panic!(
                "chunk size {size}: first divergence at trial {at}\n  \
                 batched:   {:?}\n  per-trial: {:?}",
                batched.get(at),
                reference.get(at),
            );
        }
    }
}
