//! Campaign-cell ↔ standalone-run parity: a grid cell is nothing more
//! than a standalone scenario run with a derived seed. Every cell's
//! report — and, for typed replays, the trial machines' final RNG
//! positions — must match what a user gets from `segscope run` (the
//! type-erased driver) or [`scenario::run_scenario`] (the typed driver)
//! with the same seed, params, and fault plan.

use campaign::{CampaignManifest, CampaignOptions, CampaignSpec, FaultVariant, ScenarioSel};
use rand::Rng;
use segscope_repro::attacks::kaslr::{KaslrScenario, KaslrScenarioConfig};
use segscope_repro::scenario::{self, RunOptions, Scenario, TrialCtx};
use segscope_repro::segsim::FaultPlan;
use segscope_repro::{attacks, campaign, exec};
use serde::{Deserialize, Serialize};

/// A grid touching every registered scenario at two presets × two fault
/// regimes, one trial per cell.
fn parity_spec() -> CampaignSpec {
    CampaignSpec {
        name: "cell-parity".to_owned(),
        seed: 0xCE11_9A51,
        scenarios: attacks::registry()
            .entries()
            .iter()
            .map(|e| ScenarioSel::named(e.name()))
            .collect(),
        presets: vec!["lenovo_yangtian".to_owned(), "amazon_c5_large".to_owned()],
        faults: vec![
            FaultVariant::none(),
            FaultVariant {
                name: "delivery_storm".to_owned(),
                plan: Some(FaultPlan::delivery_storm()),
            },
        ],
        defenses: vec![campaign::DefenseVariant::none()],
        replicates: 1,
        trials: Some(1),
    }
}

/// Every cell of a completed campaign equals the standalone type-erased
/// run with the cell's derived seed, resolved params, and fault plan —
/// report, totals, and fault log alike.
#[test]
fn every_cell_matches_its_standalone_dyn_run() {
    let spec = parity_spec();
    let registry = attacks::registry();
    let cells = spec.expand(&registry).expect("valid grid");
    assert_eq!(cells.len(), registry.len() * 2 * 2);

    let mut manifest = CampaignManifest::new(&spec);
    let report = campaign::run_campaign(
        &registry,
        &spec,
        &CampaignOptions {
            shards: 4,
            threads: Some(2),
            stop_after_waves: None,
        },
        &mut manifest,
        |_| {},
    )
    .expect("campaign runs")
    .expect("campaign completes");

    for (cell, result) in cells.iter().zip(&report.cell_results) {
        assert_eq!(result.index, cell.index);
        // The cell's experiment seed is the campaign-derived one.
        assert_eq!(cell.seed, exec::derive_seed(spec.seed, cell.index as u64));
        assert_eq!(result.report.seed, cell.seed);
        let standalone = registry
            .get(&cell.scenario)
            .expect("registered")
            .run_dyn(
                Some(&cell.params),
                &RunOptions {
                    seed: Some(cell.seed),
                    trials: cell.trials,
                    threads: Some(1),
                    capacity: 0,
                    fault_plan: cell.fault_plan,
                },
            )
            .expect("standalone run");
        assert_eq!(
            result.report, standalone.report,
            "cell {} ({} / {} / {})",
            cell.index, cell.scenario, cell.preset, cell.fault
        );
        assert_eq!(result.totals, standalone.totals, "cell {}", cell.index);
        assert_eq!(
            result.fault_log, standalone.fault_log,
            "cell {}",
            cell.index
        );
    }
}

/// Typed replay of KASLR cells: the campaign cell's summary equals the
/// typed driver's, and a scalar re-execution of the cell's trials lands
/// every machine on the same final RNG position regardless of which
/// cells ran before — the per-trial streams derive from
/// `(cell_seed, trial_index)` alone.
#[test]
fn kaslr_cells_replay_typed_with_identical_summaries_and_rng_positions() {
    let mut spec = parity_spec();
    spec.scenarios = vec![ScenarioSel::named("kaslr")];
    spec.trials = Some(2);
    let registry = attacks::registry();
    let cells = spec.expand(&registry).expect("valid grid");

    let mut manifest = CampaignManifest::new(&spec);
    let report = campaign::run_campaign(
        &registry,
        &spec,
        &CampaignOptions::default(),
        &mut manifest,
        |_| {},
    )
    .expect("campaign runs")
    .expect("campaign completes");

    // Scalar replay of one cell: outputs, stats, and the machines' final
    // RNG draw per trial.
    let replay = |cell: &campaign::CampaignCell| {
        let config = KaslrScenarioConfig::from_value(&cell.params).expect("typed params");
        let trials = KaslrScenario.trial_count(&config, cell.trials);
        (0..trials)
            .map(|index| {
                let ctx = TrialCtx {
                    index,
                    seed: exec::derive_seed(cell.seed, index as u64),
                    experiment_seed: cell.seed,
                };
                let mut machine = KaslrScenario.build_machine(&config, &ctx);
                if let Some(plan) = cell.fault_plan {
                    machine.set_fault_plan(Some(plan));
                }
                let output = KaslrScenario.run_trial(&config, &mut machine, &ctx);
                (
                    output,
                    scenario::TrialStats::of(&machine),
                    machine.rng_mut().gen::<u64>(),
                )
            })
            .collect::<Vec<_>>()
    };

    // First pass walks the cells in grid order; the second walks them in
    // reverse. Identical draws prove a trial's final RNG position is a
    // function of its cell alone — no cross-cell leakage at any point in
    // the sweep.
    let forward: Vec<_> = cells.iter().map(replay).collect();
    let mut backward: Vec<_> = cells.iter().rev().map(replay).collect();
    backward.reverse();
    assert_eq!(forward, backward, "final RNG positions are per-cell pure");

    for (cell, result) in cells.iter().zip(&report.cell_results) {
        let config = KaslrScenarioConfig::from_value(&cell.params).expect("typed params");
        let typed = scenario::run_scenario(
            &KaslrScenario,
            &config,
            &RunOptions {
                seed: Some(cell.seed),
                trials: cell.trials,
                threads: Some(1),
                capacity: 0,
                fault_plan: cell.fault_plan,
            },
        );
        assert_eq!(typed.seed, cell.seed);
        assert_eq!(
            typed.summary.to_value(),
            result.report.summary,
            "cell {}: typed summary equals the campaign cell's",
            cell.index
        );
        assert_eq!(typed.totals, result.totals, "cell {}", cell.index);
        assert_eq!(typed.fault_log, result.fault_log, "cell {}", cell.index);
        // The typed outputs equal the scalar replay's, trial for trial.
        let replayed = &forward[cell.index];
        assert_eq!(typed.outputs.len(), replayed.len());
        for (i, (output, stats, _)) in replayed.iter().enumerate() {
            assert_eq!(&typed.outputs[i], output, "cell {} trial {i}", cell.index);
            assert_eq!(
                typed.gt_deliveries[i], stats.gt_deliveries,
                "cell {} trial {i}",
                cell.index
            );
        }
    }
}
