//! The campaign determinism battery: merged [`CampaignReport`]s must be
//! a pure function of the campaign spec — bit-identical JSON at any
//! shard count, any thread count, and across any kill/resume schedule.
//!
//! Three layers of evidence over the *real* attack registry:
//!
//! 1. Randomized grids (proptest): random scenario subsets × preset
//!    subsets × fault variants × replicate counts × campaign seeds,
//!    swept at shards {1, 3, 8} × threads {1, 2, 4}.
//! 2. Kill-at-a-random-checkpoint: the first leg stops after a random
//!    number of waves, the manifest round-trips through its persisted
//!    JSON, and a resume under a *different* shard/thread geometry must
//!    still reassemble the uninterrupted report byte for byte.
//! 3. The full 11-scenario × 6-preset × 3-fault grid (the acceptance
//!    sweep), checked across covering geometry combinations and a
//!    mid-run kill+resume.
//! 4. The enclave attack × defense matrix ({aexcount, heckler,
//!    keystroke} × {none, quanshield, padding}): bit-identical across
//!    geometries, with the defense axis visibly moving the per-row
//!    mean accuracy in the directions the countermeasures promise.

use campaign::{CampaignManifest, CampaignOptions, CampaignSpec, FaultVariant, ScenarioSel};
use proptest::prelude::*;
use segscope_repro::attacks;
use segscope_repro::campaign;
use segscope_repro::segsim::FaultPlan;

/// Scenarios cheap enough (at `--trials 1`) to appear in randomized
/// grids; the full-grid sweep below still covers all eleven.
const FAST_SCENARIOS: [&str; 6] = ["circl", "spectral", "kaslr", "spectre", "covert", "procfp"];

const PRESETS: [&str; 6] = [
    "xiaomi_air13",
    "lenovo_yangtian",
    "lenovo_savior",
    "honor_magicbook",
    "amazon_t2_large",
    "amazon_c5_large",
];

/// The three canonical fault regimes, in a fixed draw order.
fn fault_pool() -> [FaultVariant; 3] {
    [
        FaultVariant::none(),
        FaultVariant {
            name: "delivery_storm".to_owned(),
            plan: Some(FaultPlan::delivery_storm()),
        },
        FaultVariant {
            name: "timing_storm".to_owned(),
            plan: Some(FaultPlan::timing_storm()),
        },
    ]
}

/// Builds a random-but-reproducible spec from the drawn axis shape:
/// `count` entries of each axis starting at a drawn offset, wrapping
/// around the pools.
fn spec_from(
    seed: u64,
    scen_start: usize,
    scen_count: usize,
    preset_start: usize,
    preset_count: usize,
    fault_count: usize,
    replicates: u64,
) -> CampaignSpec {
    CampaignSpec {
        name: "prop-grid".to_owned(),
        seed,
        scenarios: (0..scen_count)
            .map(|i| ScenarioSel::named(FAST_SCENARIOS[(scen_start + i) % FAST_SCENARIOS.len()]))
            .collect(),
        presets: (0..preset_count)
            .map(|i| PRESETS[(preset_start + i) % PRESETS.len()].to_owned())
            .collect(),
        faults: fault_pool()[..fault_count].to_vec(),
        defenses: vec![campaign::DefenseVariant::none()],
        replicates,
        trials: Some(1),
    }
}

/// Runs `spec` to completion at the given geometry, returning the
/// report JSON.
fn report_json_at(spec: &CampaignSpec, shards: usize, threads: usize) -> String {
    let registry = attacks::registry();
    let mut manifest = CampaignManifest::new(spec);
    let opts = CampaignOptions {
        shards,
        threads: Some(threads),
        stop_after_waves: None,
    };
    campaign::run_campaign(&registry, spec, &opts, &mut manifest, |_| {})
        .expect("campaign runs")
        .expect("campaign completes")
        .to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random grids produce bit-identical reports at every shard count
    /// in {1, 3, 8} × thread count in {1, 2, 4}.
    #[test]
    fn random_grids_are_bit_identical_across_execution_geometry(
        seed in 0u64..1_000_000,
        scen_start in 0usize..6,
        scen_count in 2usize..5,
        preset_start in 0usize..6,
        preset_count in 2usize..4,
        fault_count in 1usize..4,
        replicates in 1u64..3,
    ) {
        let spec = spec_from(
            seed, scen_start, scen_count, preset_start, preset_count, fault_count, replicates,
        );
        let reference = report_json_at(&spec, 1, 1);
        for &(shards, threads) in &[(3, 2), (8, 4), (1, 4), (8, 1)] {
            prop_assert_eq!(
                &report_json_at(&spec, shards, threads),
                &reference,
                "shards {} x threads {}", shards, threads
            );
        }
    }

    /// Killing a campaign after a random number of waves and resuming
    /// from the persisted manifest JSON — under a different geometry —
    /// reassembles the uninterrupted report byte for byte.
    #[test]
    fn kill_at_a_random_checkpoint_resumes_bit_identically(
        seed in 0u64..1_000_000,
        scen_start in 0usize..6,
        preset_start in 0usize..6,
        kill_after in 1usize..5,
        first_shards in 2usize..4,
        resume_shards in 1usize..9,
        resume_threads in 1usize..5,
    ) {
        let spec = spec_from(seed, scen_start, 2, preset_start, 2, 2, 1);
        let reference = report_json_at(&spec, 1, 1);
        let registry = attacks::registry();

        let mut manifest = CampaignManifest::new(&spec);
        let mut persisted = manifest.to_json();
        let first = campaign::run_campaign(
            &registry,
            &spec,
            &CampaignOptions {
                shards: first_shards,
                threads: Some(1),
                stop_after_waves: Some(kill_after),
            },
            &mut manifest,
            |m| persisted = m.to_json(),
        )
        .expect("first leg runs");

        // Resume strictly from the persisted JSON (what a killed process
        // leaves on disk), not the in-memory manifest.
        let mut revived = CampaignManifest::from_json(&persisted).expect("manifest parses");
        if let Some(report) = first {
            // The kill point landed past the last wave: the run finished.
            prop_assert_eq!(&report.to_json(), &reference);
            prop_assert!(revived.is_complete());
        }
        let resumed = campaign::run_campaign(
            &registry,
            &spec,
            &CampaignOptions {
                shards: resume_shards,
                threads: Some(resume_threads),
                stop_after_waves: None,
            },
            &mut revived,
            |_| {},
        )
        .expect("resume runs")
        .expect("resume completes");
        prop_assert_eq!(
            &resumed.to_json(),
            &reference,
            "kill after {} waves of {} shards, resume at {} shards x {} threads",
            kill_after, first_shards, resume_shards, resume_threads
        );
    }
}

/// The acceptance sweep: the full 11-scenario × 6-preset × 3-fault
/// grid (198 cells at one trial each) produces bit-identical reports
/// across geometry combinations covering shards {1, 3, 8} and threads
/// {1, 2, 4}, and across a mid-run kill+resume.
#[test]
fn full_grid_sweeps_bit_identically_and_survives_a_kill() {
    let mut spec = CampaignSpec::full_grid(0xF1EE7);
    spec.trials = Some(1);
    assert_eq!(spec.cell_count(), 11 * 6 * 3);
    let registry = attacks::registry();

    // (1,1), (3,2), (8,4) cover every required shard count {1,3,8} and
    // thread count {1,2,4}; the randomized battery above crosses the
    // remaining combinations on smaller grids.
    let reference = report_json_at(&spec, 1, 1);
    for &(shards, threads) in &[(3, 2), (8, 4)] {
        assert_eq!(
            report_json_at(&spec, shards, threads),
            reference,
            "shards {shards} x threads {threads}"
        );
    }

    // Kill mid-run (after 7 waves of 8 = 56 of 198 cells), round-trip
    // the manifest through JSON, resume at a different geometry.
    let mut manifest = CampaignManifest::new(&spec);
    let mut persisted = String::new();
    let first = campaign::run_campaign(
        &registry,
        &spec,
        &CampaignOptions {
            shards: 8,
            threads: Some(2),
            stop_after_waves: Some(7),
        },
        &mut manifest,
        |m| persisted = m.to_json(),
    )
    .expect("first leg runs");
    assert!(
        first.is_none(),
        "7 waves of 8 leave 198-cell grid unfinished"
    );
    let mut revived = CampaignManifest::from_json(&persisted).expect("manifest parses");
    assert_eq!(revived.completed_cells(), 56);
    let resumed = campaign::run_campaign(
        &registry,
        &spec,
        &CampaignOptions {
            shards: 3,
            threads: Some(4),
            stop_after_waves: None,
        },
        &mut revived,
        |_| {},
    )
    .expect("resume runs")
    .expect("resume completes");
    assert_eq!(
        resumed.to_json(),
        reference,
        "kill+resume over the full grid"
    );

    // The report covers the whole matrix: one row per
    // (scenario, preset, defense); the defense axis here is the
    // implicit [none].
    let report = campaign::CampaignReport::from_json(&reference).expect("report parses");
    assert!(report.matrix.iter().all(|row| row.defense == "none"));
    assert_eq!(report.matrix.len(), 11 * 6);
    assert_eq!(report.cells, 198);
    assert!(report.fault_log.delivery_faults() > 0);
    assert!(report.fault_log.timing_faults() > 0);
}

/// The enclave attack × defense matrix: {aexcount, heckler, keystroke}
/// × {none, quanshield, padding} on the Xiaomi preset. Bit-identical
/// across shard counts {1, 3, 8} × thread counts {1, 2, 4}, and the
/// per-row mean accuracy moves the way each countermeasure promises:
/// QuanShield zeroes AEX counting and caps Heckler at one hit per
/// trial, padding drifts Heckler's predicted windows off schedule, and
/// AEX counting calibrates padding away (the pads inflate calibration
/// and secret phases alike).
#[test]
fn defense_matrix_is_deterministic_and_the_axis_moves_accuracy() {
    let mut spec = CampaignSpec::defense_matrix(0xDEF1);
    spec.trials = Some(6);
    assert_eq!(spec.cell_count(), 3 * 3);

    // (1,1), (3,2), (8,4) cover every required shard count {1,3,8} and
    // thread count {1,2,4}; the randomized battery above crosses the
    // remaining combinations.
    let reference = report_json_at(&spec, 1, 1);
    for &(shards, threads) in &[(3, 2), (8, 4)] {
        assert_eq!(
            report_json_at(&spec, shards, threads),
            reference,
            "shards {shards} x threads {threads}"
        );
    }

    let report = campaign::CampaignReport::from_json(&reference).expect("report parses");
    assert_eq!(report.matrix.len(), 3 * 3);
    let acc = |scenario: &str, defense: &str| {
        report
            .matrix
            .iter()
            .find(|row| row.scenario == scenario && row.defense == defense)
            .unwrap_or_else(|| panic!("missing matrix row {scenario} x {defense}"))
            .mean_accuracy
            .unwrap_or_else(|| panic!("row {scenario} x {defense} has no accuracy"))
    };

    // AEX counting: undefended stepping recovers the secret; QuanShield
    // destroys the enclave during calibration; padding is calibrated
    // away (same per-unit inflation in both phases).
    assert!(acc("aexcount", "none") >= 0.75);
    assert_eq!(acc("aexcount", "quanshield"), 0.0);
    assert!(acc("aexcount", "padding") >= 0.75);

    // Heckler: nominal schedules are hittable; QuanShield admits at
    // most one hit in the first window (1/16 per trial); padding's
    // stolen time drifts the real windows off the predicted centers.
    assert!(acc("heckler", "none") >= 0.9);
    assert!(acc("heckler", "quanshield") <= 1.0 / 16.0 + 1e-9);
    assert!(
        acc("heckler", "padding") + 0.05 < acc("heckler", "none"),
        "padding must measurably degrade heckler: {} vs {}",
        acc("heckler", "padding"),
        acc("heckler", "none")
    );

    // Keystroke identification is noisier at quick scale; at this pinned
    // campaign seed the padded cohort identifies no better than the
    // undefended one (pads flood the SegCnt edge stream).
    assert!(acc("keystroke", "padding") <= acc("keystroke", "none"));
}
