//! Tier-1 hook for the differential conformance harness: the ≥ 1e6-op
//! floor and the mutation-detection canary must run on every plain
//! `cargo test`, not only on workspace-wide CI (the full suite lives in
//! `crates/conformance/tests/differential.rs`).

use conformance::{replay, run_differential, Mutation};

/// Same stream as the conformance crate's acceptance test; a second
/// seed keeps the two suites from silently testing identical cases.
const EXPERIMENT_SEED: u64 = 0x5E65_C09F;

#[test]
fn reference_model_survives_a_million_generated_ops() {
    let report = run_differential(EXPERIMENT_SEED, 2_048, 512, None);
    assert!(
        report.is_conformant(),
        "models diverged:\n{}",
        report.divergence.unwrap()
    );
    assert_eq!(report.ops, 1_048_576, "op floor regressed");
}

#[test]
fn harness_catches_a_seeded_bug() {
    let report = run_differential(EXPERIMENT_SEED, 128, 256, Some(Mutation::SkipEsScrub));
    let case = report.divergence.expect("seeded bug must be caught");
    assert!(
        replay(&case.shrunk_ops, Some(Mutation::SkipEsScrub)).is_some(),
        "shrunk case must replay"
    );
}
