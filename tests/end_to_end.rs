//! Integration tests spanning the whole stack: segment semantics →
//! machine simulator → SegScope probe, across machines, timer
//! frequencies, and mitigations.

use segscope_repro::irq::{InterruptKind, Ps};
use segscope_repro::segscope::{ProbeError, SegProbe};
use segscope_repro::segsim::{Machine, MachineConfig, SpanEnd};
use segscope_repro::x86seg::Selector;

/// The headline property (paper Table II): on every Table I machine and
/// at every HZ, SegScope observes *exactly* the delivered interrupts —
/// no false positives, no misses.
#[test]
fn probe_is_exact_on_every_machine_and_hz() {
    for (i, config) in MachineConfig::table1().into_iter().enumerate() {
        for hz in [100.0, 250.0, 1000.0] {
            let mut machine = Machine::new(config.clone().with_hz(hz), 0xE2E + i as u64);
            machine.ground_truth_mut().clear();
            let mut probe = SegProbe::new();
            let samples = probe
                .probe_for(&mut machine, Ps::from_secs(1))
                .expect("probe works on stock machines");
            let truth = machine.ground_truth().len();
            assert_eq!(
                samples.len(),
                truth,
                "{} @ HZ={hz}: probed {} vs delivered {}",
                config.name,
                samples.len(),
                truth
            );
            // ~hz timer interrupts in one second.
            let expected = hz as usize;
            assert!(
                samples.len() >= expected - 3 && samples.len() <= expected + 10,
                "{} @ HZ={hz}: {} samples",
                config.name,
                samples.len()
            );
        }
    }
}

/// The footprint mechanics end to end: plant each non-zero null marker,
/// take one interrupt, observe the scrub.
#[test]
fn every_nonzero_null_marker_is_scrubbed() {
    for raw in [0x1u16, 0x2, 0x3] {
        let mut machine = Machine::new(MachineConfig::default(), u64::from(raw));
        machine
            .wrgs(Selector::from_bits(raw))
            .expect("marker loads silently");
        assert_eq!(machine.rdgs().bits(), raw);
        let span = machine.run_user_until(Ps::MAX);
        assert!(matches!(span.ended_by, SpanEnd::Interrupt(_)));
        assert_eq!(machine.rdgs().bits(), 0, "marker {raw:#x} must be scrubbed");
    }
}

/// SegScope works where the timer-constrained threat model kills the
/// baselines: `CR4.TSD` set.
#[test]
fn probe_survives_cr4_tsd() {
    let mut machine = Machine::new(MachineConfig::xiaomi_air13().with_cr4_tsd(true), 7);
    assert!(machine.rdtsc().is_err(), "rdtsc must fault under TSD");
    let mut probe = SegProbe::new();
    let samples = probe.probe_n(&mut machine, 50).expect("no timer needed");
    assert_eq!(samples.len(), 50);
}

/// The Discussion-section mitigations actually stop the probe.
#[test]
fn mitigations_defeat_the_probe() {
    // Future-architecture selector preservation.
    let cfg = MachineConfig::default().with_preserve_selectors(true);
    let mut machine = Machine::new(cfg, 1);
    let mut probe = SegProbe::new();
    assert_eq!(
        probe.probe_once_bounded(&mut machine, Ps::from_ms(100)),
        Err(ProbeError::MitigatedMachine)
    );
    // Restricting unprivileged segment writes.
    let cfg = MachineConfig::default().with_restricted_segment_writes(true);
    let mut machine = Machine::new(cfg, 2);
    assert_eq!(
        SegProbe::new().probe_once(&mut machine),
        Err(ProbeError::SegmentWriteDenied)
    );
}

/// Tickless mode suppresses timer edges, and co-locating a busy task
/// (modeled by re-enabling the tick) restores them — the paper's
/// countermeasure-bypass note.
#[test]
fn tickless_bypass() {
    let mut machine = Machine::new(MachineConfig::default().with_tickless(true), 3);
    let mut probe = SegProbe::new();
    let before = probe
        .probe_for(&mut machine, Ps::from_secs(1))
        .expect("probe");
    let timer_edges = before
        .iter()
        .filter(|s| s.kind == InterruptKind::Timer)
        .count();
    assert_eq!(timer_edges, 0, "tickless core has no timer edges");
    machine.set_timer_enabled(true); // busy co-located task brings the tick back
    let after = probe
        .probe_for(&mut machine, Ps::from_secs(1))
        .expect("probe");
    let timer_edges = after
        .iter()
        .filter(|s| s.kind == InterruptKind::Timer)
        .count();
    assert!(timer_edges > 200, "tick restored: {timer_edges}");
}

/// SegCnt magnitudes follow Eq. 1: interval ≈ (period − w) · f / k.
#[test]
fn segcnt_magnitude_matches_equation_1() {
    let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), 9);
    machine.spin(600_000_000); // steady state
    let mut probe = SegProbe::new();
    let samples = probe.probe_n(&mut machine, 120).expect("probe");
    let timer_cnts: Vec<f64> = samples
        .iter()
        .filter(|s| s.kind == InterruptKind::Timer)
        .map(|s| s.segcnt as f64)
        .collect();
    let mean = segscope_repro::segscope::mean(&timer_cnts);
    let period_s = 1.0 / machine.config().timer_hz;
    let freq = machine.current_freq_khz() as f64 * 1e3;
    let k = machine.probe_iter_cycles();
    let predicted = period_s * freq / k;
    let rel = (mean - predicted).abs() / predicted;
    assert!(
        rel < 0.05,
        "Eq.1: measured {mean:.3e} vs predicted {predicted:.3e}"
    );
}
