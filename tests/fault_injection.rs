//! Fault-injection tests: every attack pipeline under an adversarial
//! [`FaultPlan`].
//!
//! The contract mirrors the paper's robustness claim:
//!
//! * **Timing faults** (handler jitter, frequency-step clamping, SMT
//!   bursts) perturb *values* but never *counts* — SegCnt exactness and
//!   count-based attacks survive unchanged.
//! * **Delivery faults** (drops, duplicates, coalescing) break the
//!   one-sample-per-interrupt invariant and must fail *detectably*: a
//!   [`DeliveryAudit`] degraded verdict, a typed error, or a measurably
//!   changed/degraded attack result — never a silently identical one.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use segscope_repro::attacks::circl::{run_extraction, CirclConfig};
use segscope_repro::attacks::covert::{transmit, CovertConfig};
use segscope_repro::attacks::dnnsteal::{collect_annotated_trace_with, Architecture};
use segscope_repro::attacks::kaslr::{break_kaslr_fresh, KaslrConfig};
use segscope_repro::attacks::keystroke::{identify_users, KeystrokeConfig};
use segscope_repro::attacks::procfp::{observe_with, AppClass};
use segscope_repro::attacks::spectral::{run_attack, SpectralConfig, SpectralMode};
use segscope_repro::attacks::spectre::{leak_secret, SpectreConfig};
use segscope_repro::attacks::website::{collect_trace, Browser, Setting, WebsiteFpConfig};
use segscope_repro::irq::Ps;
use segscope_repro::segscope::{AuditVerdict, DeliveryAudit, SegProbe};
use segscope_repro::segsim::{FaultPlan, Machine, MachineConfig};

/// A delivery-free plan: only per-interrupt timing noise.
fn jitter_only() -> FaultPlan {
    FaultPlan::none().with_handler_jitter(0.25)
}

// ---------------------------------------------------------------------------
// Core machine-level contract
// ---------------------------------------------------------------------------

/// SegCnt exactness survives the full timing storm: one probe sample per
/// ground-truth interrupt, audited as `Exact`, with the fault log
/// proving the storm actually fired.
#[test]
fn timing_storm_preserves_segcnt_exactness() {
    for (name, config) in [
        ("xiaomi_air13", MachineConfig::xiaomi_air13()),
        ("amazon_c5_large", MachineConfig::amazon_c5_large()),
    ] {
        let mut machine = Machine::new(config.with_fault_plan(FaultPlan::timing_storm()), 0xFA01);
        let samples = SegProbe::new().probe_n(&mut machine, 300).expect("probe");
        let audit = DeliveryAudit::for_machine(&machine, samples.len());
        assert!(
            audit.is_exact(),
            "{name}: timing faults must not break exactness: {audit:?}"
        );
        assert_eq!(samples.len(), machine.ground_truth().len(), "{name}");
        assert!(
            machine.fault_log().jittered > 0,
            "{name}: the storm never fired"
        );
    }
}

/// Delivery faults break exactness and the audit says so: the verdict is
/// `Degraded` with a non-trivial missed/spurious accounting.
#[test]
fn delivery_storm_is_detected_by_the_audit() {
    let config = MachineConfig::xiaomi_air13().with_fault_plan(FaultPlan::delivery_storm());
    let mut machine = Machine::new(config, 0xFA02);
    let samples = SegProbe::new().probe_n(&mut machine, 300).expect("probe");
    let log = machine.fault_log();
    assert!(
        log.dropped + log.duplicated + log.coalesced > 0,
        "delivery storm never fired: {log:?}"
    );
    let audit = DeliveryAudit::for_machine(&machine, samples.len());
    assert!(!audit.is_exact(), "delivery faults must not audit as exact");
    match audit.verdict() {
        AuditVerdict::Degraded { missed, spurious } => {
            assert!(missed + spurious > 0, "degraded verdict with no damage");
        }
        AuditVerdict::Exact => panic!("delivery storm audited as Exact: {audit:?}"),
    }
}

/// An inert plan (`FaultPlan::none()`) is behaviourally invisible: the
/// machine produces the bit-identical SegCnt stream it produces with no
/// plan installed — fault hooks must not consume RNG when inactive.
#[test]
fn inert_plan_preserves_the_rng_stream() {
    let run = |plan: Option<FaultPlan>| {
        let mut config = MachineConfig::lenovo_savior();
        config.fault_plan = plan;
        let mut machine = Machine::new(config, 0xFA03);
        SegProbe::new()
            .probe_n(&mut machine, 100)
            .expect("probe")
            .iter()
            .map(|s| (s.segcnt, s.ended_at.as_ps()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(None), run(Some(FaultPlan::none())));
}

// ---------------------------------------------------------------------------
// Per-attack: timing faults preserved, delivery faults detectable
// ---------------------------------------------------------------------------

/// CIRCL (IV-B): the frequency channel survives handler jitter; a
/// delivery storm visibly corrupts the observation stream.
#[test]
fn circl_fault_injection() {
    let clean = run_extraction(&CirclConfig::quick());
    assert!(clean.recovered, "clean baseline must recover the key");

    let jittered = run_extraction(&CirclConfig::quick().with_fault_plan(jitter_only()));
    assert!(
        jittered.recovered,
        "timing-only faults broke CIRCL extraction (bit accuracy {})",
        jittered.bit_accuracy
    );

    let stormed =
        run_extraction(&CirclConfig::quick().with_fault_plan(FaultPlan::delivery_storm()));
    assert_ne!(
        stormed.observations, clean.observations,
        "delivery faults must visibly alter the observations"
    );
    assert!(
        stormed.bit_accuracy <= clean.bit_accuracy,
        "dropping challenge interrupts cannot improve accuracy: {} > {}",
        stormed.bit_accuracy,
        clean.bit_accuracy
    );
}

/// Covert channel: jitter leaves the slow channel decodable; a delivery
/// storm measurably shifts the per-slot medians it decodes from.
#[test]
fn covert_fault_injection() {
    let message: Vec<bool> = (0..24).map(|i| i % 3 == 0).collect();
    let clean = transmit(&CovertConfig::slow(), &message, 0xFA04);

    let jittered = transmit(
        &CovertConfig::slow().with_fault_plan(jitter_only()),
        &message,
        0xFA04,
    );
    assert!(
        jittered.error_rate <= clean.error_rate + 0.15,
        "jitter alone should not wreck the slow channel: {} vs {}",
        jittered.error_rate,
        clean.error_rate
    );

    let stormed = transmit(
        &CovertConfig::slow().with_fault_plan(FaultPlan::delivery_storm()),
        &message,
        0xFA04,
    );
    assert_ne!(
        stormed.slot_medians, clean.slot_medians,
        "delivery faults must perturb the decoded medians"
    );
}

/// DNNSteal (IV-C): traces stay collectable under jitter; a delivery
/// storm changes the per-timestep features (shorter/longer trace or
/// different SegCnt values).
#[test]
fn dnnsteal_fault_injection() {
    let mut rng = SmallRng::seed_from_u64(0xFA05);
    let arch = Architecture::alexnet_like(&mut rng);

    let clean = collect_annotated_trace_with(&arch, 0xFA06, None).expect("clean trace");
    let jittered =
        collect_annotated_trace_with(&arch, 0xFA06, Some(jitter_only())).expect("jittered trace");
    assert_eq!(
        clean.tags.len(),
        clean.xs.len(),
        "annotated trace is per-timestep"
    );
    // Timing faults change feature values, never the count invariant.
    assert_eq!(jittered.tags.len(), jittered.xs.len());

    let stormed = collect_annotated_trace_with(&arch, 0xFA06, Some(FaultPlan::delivery_storm()))
        .expect("stormed trace");
    assert!(
        stormed.xs != clean.xs || stormed.tags != clean.tags,
        "delivery faults must alter the annotated trace"
    );
}

/// KASLR (IV-E): the slot ranking survives handler jitter; a delivery
/// storm visibly reshuffles the measured ranking.
#[test]
fn kaslr_fault_injection() {
    let config = KaslrConfig {
        c: 5,
        ..KaslrConfig::quick()
    };
    let clean = break_kaslr_fresh(MachineConfig::xiaomi_air13(), &config, 0xFA07).expect("clean");
    assert!(clean.top_n_hit(5), "clean baseline must rank the secret");

    let jittered = break_kaslr_fresh(
        MachineConfig::xiaomi_air13().with_fault_plan(jitter_only()),
        &config,
        0xFA07,
    )
    .expect("jittered");
    assert!(
        jittered.top_n_hit(5),
        "timing-only faults must not hide the secret slot"
    );

    let stormed = break_kaslr_fresh(
        MachineConfig::xiaomi_air13().with_fault_plan(FaultPlan::delivery_storm()),
        &config,
        0xFA07,
    )
    .expect("stormed run still completes");
    assert_ne!(
        stormed.ranking, clean.ranking,
        "delivery faults must visibly perturb the ranking"
    );
}

/// Keystroke biometrics: identification stays useful under jitter and
/// degrades (never improves) under a delivery storm.
#[test]
fn keystroke_fault_injection() {
    let clean = identify_users(&KeystrokeConfig::quick());
    let jittered = identify_users(&KeystrokeConfig::quick().with_fault_plan(jitter_only()));
    assert!(
        jittered.accuracy + 0.2 >= clean.accuracy,
        "jitter should not collapse keystroke accuracy: {} vs {}",
        jittered.accuracy,
        clean.accuracy
    );
    let stormed =
        identify_users(&KeystrokeConfig::quick().with_fault_plan(FaultPlan::delivery_storm()));
    assert!(
        stormed.accuracy <= clean.accuracy,
        "dropped keystroke interrupts cannot improve identification: {} > {}",
        stormed.accuracy,
        clean.accuracy
    );
}

/// Process fingerprinting: observed feature vectors shift under a
/// delivery storm (detectable), and stay well-formed under jitter.
#[test]
fn procfp_fault_injection() {
    let window = Ps::from_ms(300);
    let clean = observe_with(AppClass::Compiler, 0xFA08, window, 64, None);
    let jittered = observe_with(AppClass::Compiler, 0xFA08, window, 64, Some(jitter_only()));
    let stormed = observe_with(
        AppClass::Compiler,
        0xFA08,
        window,
        64,
        Some(FaultPlan::delivery_storm()),
    );
    assert_ne!(
        clean, stormed,
        "delivery faults must alter the observed features"
    );
    // Jitter shifts values too (handler spans feed the quantiles), but
    // through a different mechanism than dropped interrupts.
    assert_ne!(jittered, clean, "jitter left the features untouched");
    assert_ne!(jittered, stormed, "timing and delivery faults must differ");
}

/// Spectral (IV-D): the SegScope-enhanced filter keeps its edge under
/// timing faults; delivery faults blind the interrupt guard and the
/// error rate cannot drop below the clean enhanced run's.
#[test]
fn spectral_fault_injection() {
    let bits = 20_000;
    let clean = run_attack(
        &SpectralConfig::paper_default(),
        SpectralMode::Enhanced,
        bits,
        0xFA09,
    );
    let jittered = run_attack(
        &SpectralConfig::paper_default().with_fault_plan(jitter_only()),
        SpectralMode::Enhanced,
        bits,
        0xFA09,
    );
    let original = run_attack(
        &SpectralConfig::paper_default().with_fault_plan(jitter_only()),
        SpectralMode::Original,
        bits,
        0xFA09,
    );
    assert!(
        jittered.error_rate < original.error_rate,
        "enhanced mode must keep its edge under jitter: {} vs {}",
        jittered.error_rate,
        original.error_rate
    );
    let stormed = run_attack(
        &SpectralConfig::paper_default().with_fault_plan(FaultPlan::delivery_storm()),
        SpectralMode::Enhanced,
        bits,
        0xFA09,
    );
    assert!(
        stormed.error_rate >= clean.error_rate,
        "dropped interrupts blind the guard; error cannot improve: {} < {}",
        stormed.error_rate,
        clean.error_rate
    );
}

/// Spectre (IV-F): the byte leak survives handler jitter; a delivery
/// storm visibly changes the recovered bytes or degrades the rate.
#[test]
fn spectre_fault_injection() {
    let clean = leak_secret(b"OK", &SpectreConfig::quick(), 0xFA0A).expect("clean leak");
    let jittered = leak_secret(
        b"OK",
        &SpectreConfig::quick().with_fault_plan(jitter_only()),
        0xFA0A,
    )
    .expect("jittered leak");
    assert!(
        jittered.success_rate >= 0.5,
        "timing-only faults broke the leak: {}",
        jittered.success_rate
    );
    let stormed = leak_secret(
        b"OK",
        &SpectreConfig::quick().with_fault_plan(FaultPlan::delivery_storm()),
        0xFA0A,
    )
    .expect("stormed leak still completes");
    assert!(
        stormed.success_rate <= clean.success_rate,
        "delivery faults cannot improve the leak: {} > {}",
        stormed.success_rate,
        clean.success_rate
    );
}

/// Website fingerprinting (IV-A): traces stay deterministic under any
/// plan, and a delivery storm produces a measurably different trace.
#[test]
fn website_fault_injection() {
    let clean_cfg = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
    let storm_cfg = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores)
        .with_fault_plan(FaultPlan::delivery_storm());
    let jitter_cfg = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores)
        .with_fault_plan(jitter_only());

    let clean = collect_trace(&clean_cfg, 3, 0xFA0B);
    let stormed = collect_trace(&storm_cfg, 3, 0xFA0B);
    let jittered = collect_trace(&jitter_cfg, 3, 0xFA0B);

    assert_eq!(
        stormed,
        collect_trace(&storm_cfg, 3, 0xFA0B),
        "fault injection must stay deterministic"
    );
    assert_ne!(clean, stormed, "delivery faults must alter the trace");
    // Jitter perturbs values but the trace keeps carrying signal.
    let spread = |xs: &[f64]| {
        let mn = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        mx - mn
    };
    assert!(spread(&jittered) > 0.0, "jittered trace lost all signal");
}

// ---------------------------------------------------------------------------
// Countermeasure × fault-plan composition
// ---------------------------------------------------------------------------

/// Deterministic padding composes with an adversarial fault plan: pads
/// stay on their synthetic grid (delivery faults cannot drop them, and
/// timing jitter cannot move their fixed exit cost), while real
/// deliveries keep faulting — and the composition is bit-deterministic.
#[test]
fn padding_composes_with_delivery_and_timing_faults() {
    use segscope_repro::irq::ExitClass;
    use segscope_repro::segsim::Defense;

    let run = |plan: Option<FaultPlan>| {
        let mut config = MachineConfig::xiaomi_air13().with_defense(Defense::default_padding());
        config.fault_plan = plan;
        let mut machine = Machine::new(config, 0xFAD5);
        machine.spin(1_000_000_000); // ~300 ms: enough ticks for the storm to fire
        machine
    };
    let clean = run(None);
    let stormed = run(Some(
        FaultPlan::delivery_storm()
            .with_drop_prob(0.3)
            .with_duplicate_prob(0.1),
    ));
    let jittered = run(Some(FaultPlan::timing_storm()));

    let log = stormed.fault_log();
    assert!(
        log.dropped + log.duplicated > 0,
        "storm never fired: {log:?}"
    );
    // Pads are synthetic kernel exits, not fabric deliveries: drops
    // cannot thin the grid — each machine keeps one pad per 1 ms quantum
    // of its own wall clock (faults shift the wall clock a little for a
    // fixed cycle workload, so compare densities, not raw counts).
    assert!(clean.padded_exits() > 0);
    for (name, machine) in [
        ("clean", &clean),
        ("stormed", &stormed),
        ("jittered", &jittered),
    ] {
        let elapsed_ms = machine.now().as_ps() / 1_000_000_000;
        assert!(
            machine.padded_exits().abs_diff(elapsed_ms) <= 2,
            "{name}: pad grid off density: {} pads over {elapsed_ms} ms",
            machine.padded_exits()
        );
    }
    // Timing faults jitter real handlers but never the fixed pad cost.
    let pad_cost = Defense::default_padding();
    let Defense::Padding { exit_cost, .. } = pad_cost else {
        unreachable!("default_padding is the padding arm")
    };
    assert!(jittered.fault_log().jittered > 0);
    for record in jittered.ground_truth().of_class(ExitClass::DefensePad) {
        assert_eq!(record.handler_cost, exit_cost, "pad cost must stay fixed");
    }
    // And the whole composition replays bit-identically.
    let replayed = run(Some(
        FaultPlan::delivery_storm()
            .with_drop_prob(0.3)
            .with_duplicate_prob(0.1),
    ));
    assert_eq!(
        stormed.ground_truth().records(),
        replayed.ground_truth().records()
    );
    assert_eq!(*stormed.fault_log(), *replayed.fault_log());
}

/// QuanShield composes with a delivery storm: drops thin the interrupt
/// stream but the first AEX that does land still destroys the enclave,
/// and the destruction point is deterministic.
#[test]
fn quanshield_composes_with_a_delivery_storm() {
    use segscope_repro::segsim::Defense;

    let run = || {
        let config = MachineConfig::xiaomi_air13()
            .with_defense(Defense::QuanShield)
            .with_fault_plan(FaultPlan::delivery_storm().with_drop_prob(0.9));
        let mut machine = Machine::new(config, 0xFAD6);
        assert!(machine.enter_enclave());
        while !machine.enclave_destroyed() {
            let _ = machine.run_user_until(machine.now() + Ps::from_ms(1));
        }
        (
            machine.now(),
            machine.aex_exits(),
            machine.fault_log().dropped,
        )
    };
    let (destroyed_at, aex, dropped) = run();
    assert_eq!(aex, 1, "self-destruct admits exactly one AEX");
    assert!(dropped > 0, "the storm should drop deliveries first");
    assert_eq!(
        run(),
        (destroyed_at, aex, dropped),
        "destruction point must be deterministic"
    );
}
