//! Golden scenario-report snapshots for the two enclave studies
//! (`aexcount`, `heckler`), pinned at the CLI-visible report layer:
//! the exact JSON `segscope run <name>` prints for a fixed seed and
//! trial count is blessed into `tests/golden/<name>.report.json`.
//!
//! Any drift in the kernel-exit model, the defense layer, the enclave
//! lifecycle, or the scenario driver shows up as a byte diff here.
//! Regenerate intentionally with:
//!
//! ```text
//! SEGSCOPE_BLESS=1 cargo test --test golden_enclave
//! ```

use segscope_repro::attacks;
use segscope_repro::scenario::RunOptions;
use serde::Serialize;
use std::path::PathBuf;

/// Fixed seed for every golden report run.
const GOLDEN_SEED: u64 = 0x601D;
/// Trials per golden run — small, but enough to exercise multi-trial
/// seed derivation and the summary reductions.
const GOLDEN_TRIALS: usize = 3;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.report.json"))
}

fn check_golden_report(name: &str) {
    let entry = attacks::registry().get(name).expect("scenario registered");
    let opts = RunOptions {
        seed: Some(GOLDEN_SEED),
        trials: Some(GOLDEN_TRIALS),
        ..RunOptions::default()
    };
    let run = entry.run_dyn(None, &opts).expect("default params valid");
    let actual = serde_json::to_string(&run.report.to_value()).expect("report serializes");
    let path = golden_path(name);
    if std::env::var("SEGSCOPE_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, actual + "\n").expect("golden file writable");
        return;
    }
    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SEGSCOPE_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        blessed.trim_end(),
        "golden report drift for `{name}`; if intentional, regenerate with \
         SEGSCOPE_BLESS=1 cargo test --test golden_enclave"
    );
}

#[test]
fn golden_aexcount_report() {
    check_golden_report("aexcount");
}

#[test]
fn golden_heckler_report() {
    check_golden_report("heckler");
}
