//! Golden-trace snapshot tests: one canonical `Machine` run per Table I
//! vendor configuration, snapshotted to `tests/golden/*.json`.
//!
//! Each snapshot captures the three observable layers of a SegScope run:
//! the attacker-visible SegCnt stream, the simulator's ground-truth
//! delivered-interrupt trace, and the raw per-return segment footprints.
//! Any behavioural drift in the simulator, the interrupt fabric, or the
//! scrub semantics shows up as a JSON diff against the blessed file.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! SEGSCOPE_BLESS=1 cargo test --test golden_trace
//! ```

use segscope::SegProbe;
use segscope_repro::replay::first_divergence;
use segsim::{Machine, MachineConfig, SpanEnd};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use x86seg::{PrivilegeLevel, Selector};

/// Fixed seed for every golden run; the config name is the only varying
/// input.
const GOLDEN_SEED: u64 = 0x601D;
/// Probe samples snapshotted per config.
const PROBE_SAMPLES: usize = 24;
/// Raw user spans (with footprints) snapshotted per config.
const RAW_SPANS: usize = 12;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenSample {
    segcnt: u64,
    kind: String,
    started_at_ps: u64,
    ended_at_ps: u64,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenIrq {
    at_ps: u64,
    kind: String,
    handler_cost_ps: u64,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenSpan {
    kind: String,
    at_ps: u64,
    kernel_span_ps: u64,
    /// Serialized `ReturnFootprint` of the kernel→user return.
    footprint: String,
    /// GS selector value observed right after the return.
    gs_after: u16,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenTrace {
    config: String,
    seed: u64,
    samples: Vec<GoldenSample>,
    delivered: Vec<GoldenIrq>,
    spans: Vec<GoldenSpan>,
    final_now_ps: u64,
}

fn record_trace(name: &str, config: MachineConfig) -> GoldenTrace {
    let mut machine = Machine::new(config, GOLDEN_SEED);
    let samples = SegProbe::new()
        .probe_n(&mut machine, PROBE_SAMPLES)
        .expect("golden configs never mitigate the probe")
        .into_iter()
        .map(|s| GoldenSample {
            segcnt: s.segcnt,
            kind: format!("{:?}", s.kind),
            started_at_ps: s.started_at.as_ps(),
            ended_at_ps: s.ended_at.as_ps(),
        })
        .collect();
    // Raw spans: park the 0x2 marker and watch each return's footprint.
    let mut spans = Vec::with_capacity(RAW_SPANS);
    while spans.len() < RAW_SPANS {
        machine
            .wrgs(Selector::null_with_rpl(PrivilegeLevel::Ring2))
            .expect("golden configs never restrict segment writes");
        let span = machine.run_user_until(irq::Ps::MAX);
        let SpanEnd::Interrupt(irq) = span.ended_by else {
            panic!("unbounded span must end in an interrupt");
        };
        spans.push(GoldenSpan {
            kind: format!("{:?}", irq.kind),
            at_ps: irq.at.as_ps(),
            kernel_span_ps: irq.kernel_span.as_ps(),
            footprint: serde_json::to_string(&irq.footprint).expect("footprint serializes"),
            gs_after: machine.rdgs().bits(),
        });
    }
    let delivered = machine
        .ground_truth()
        .records()
        .iter()
        .map(|r| GoldenIrq {
            at_ps: r.at.as_ps(),
            kind: format!("{:?}", r.kind),
            handler_cost_ps: r.handler_cost.as_ps(),
        })
        .collect();
    GoldenTrace {
        config: name.to_owned(),
        seed: GOLDEN_SEED,
        samples,
        delivered,
        spans,
        final_now_ps: machine.now().as_ps(),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check_golden(name: &str, config: MachineConfig) {
    let actual = record_trace(name, config);
    let path = golden_path(name);
    let serialized = serde_json::to_string(&actual).expect("trace serializes");
    if std::env::var("SEGSCOPE_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, serialized + "\n").expect("golden file writable");
        return;
    }
    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SEGSCOPE_BLESS=1",
            path.display()
        )
    });
    let expected: GoldenTrace =
        serde_json::from_str(&blessed).expect("golden file parses as GoldenTrace");
    if actual == expected {
        return;
    }
    // Drift: pinpoint the first diverging record in each stream instead
    // of dumping whole-struct inequality.
    assert_stream(name, "samples", &actual.samples, &expected.samples);
    assert_stream(name, "delivered", &actual.delivered, &expected.delivered);
    assert_stream(name, "spans", &actual.spans, &expected.spans);
    assert_eq!(
        actual.final_now_ps, expected.final_now_ps,
        "golden trace drift for {name}: streams agree but final_now_ps moved; \
         if intentional, regenerate with SEGSCOPE_BLESS=1 cargo test --test golden_trace"
    );
    panic!("golden trace drift for {name} outside the recorded streams (config/seed header)");
}

/// Fails with the first diverging index and both sides' records — the
/// bisection-style report the whole-trace `assert_eq!` used to bury.
fn assert_stream<T: PartialEq + std::fmt::Debug>(
    name: &str,
    stream: &str,
    actual: &[T],
    blessed: &[T],
) {
    if let Some(at) = first_divergence(actual, blessed) {
        panic!(
            "golden trace drift for {name}: `{stream}` first diverges at index {at} \
             ({} actual / {} blessed records)\n  actual:  {:?}\n  blessed: {:?}\n\
             if intentional, regenerate with SEGSCOPE_BLESS=1 cargo test --test golden_trace",
            actual.len(),
            blessed.len(),
            actual.get(at),
            blessed.get(at),
        );
    }
}

#[test]
fn golden_xiaomi_air13() {
    check_golden("xiaomi_air13", MachineConfig::xiaomi_air13());
}

#[test]
fn golden_lenovo_yangtian() {
    check_golden("lenovo_yangtian", MachineConfig::lenovo_yangtian());
}

#[test]
fn golden_lenovo_savior() {
    check_golden("lenovo_savior", MachineConfig::lenovo_savior());
}

#[test]
fn golden_honor_magicbook() {
    check_golden("honor_magicbook", MachineConfig::honor_magicbook());
}

#[test]
fn golden_amazon_t2_large() {
    check_golden("amazon_t2_large", MachineConfig::amazon_t2_large());
}

#[test]
fn golden_amazon_c5_large() {
    check_golden("amazon_c5_large", MachineConfig::amazon_c5_large());
}
