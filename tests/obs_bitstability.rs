//! Tracing-off vs tracing-on bit-stability: installing a
//! [`obs::TraceSink`] must not perturb a run in any observable way.
//!
//! The observability hooks fire *after* every RNG decision and consume
//! no randomness themselves, so a traced machine and an untraced machine
//! with the same `(config, seed)` must produce identical SegCnt series,
//! identical classifier outputs, and leave their RNG streams at the same
//! position — the same discipline `tests/golden_trace.rs` pins for the
//! fault hooks.

use rand::Rng;
use segscope_repro::irq::Ps;
use segscope_repro::obs;
use segscope_repro::segscope::{SegProbe, TimerEdgeClassifier};
use segscope_repro::segsim::{FaultPlan, Machine, MachineConfig};

/// One probing trial: SegCnt series, per-sample classifier verdicts, and
/// the RNG stream position (next u64 drawn after the run).
fn probing_trial(config: MachineConfig, seed: u64, traced: bool) -> (Vec<u64>, Vec<bool>, u64) {
    let mut machine = Machine::new(config, seed);
    if traced {
        machine.install_trace_sink(obs::TraceSink::with_capacity(1 << 15));
    }
    let mut probe = SegProbe::new();
    let samples = probe
        .probe_for(&mut machine, Ps::from_secs(1))
        .expect("probe works on stock machines");
    let segcnts: Vec<u64> = samples.iter().map(|s| s.segcnt).collect();
    let floats: Vec<f64> = segcnts.iter().map(|&c| c as f64).collect();
    let classifier = TimerEdgeClassifier::fit(&floats);
    let verdicts: Vec<bool> = floats
        .iter()
        .map(|&c| classifier.is_timer_edge(c))
        .collect();
    let rng_position = machine.rng_mut().gen::<u64>();
    (segcnts, verdicts, rng_position)
}

#[test]
fn tracing_is_bit_stable_on_every_vendor_preset() {
    for (i, config) in MachineConfig::table1().into_iter().enumerate() {
        let name = config.name.clone();
        let seed = 0xB175 + i as u64;
        let plain = probing_trial(config.clone(), seed, false);
        let traced = probing_trial(config, seed, true);
        assert_eq!(plain.0, traced.0, "{name}: SegCnt series diverged");
        assert_eq!(plain.1, traced.1, "{name}: classifier outputs diverged");
        assert_eq!(plain.2, traced.2, "{name}: RNG stream position diverged");
    }
}

/// The fault-injection paths draw extra randomness (drop/duplicate rolls,
/// jitter); the hooks there must observe those decisions without adding
/// draws of their own.
#[test]
fn tracing_is_bit_stable_under_fault_injection() {
    let plans = [
        FaultPlan::timing_storm(),
        FaultPlan::none()
            .with_drop_prob(0.2)
            .with_duplicate_prob(0.15),
    ];
    for (i, plan) in plans.into_iter().enumerate() {
        let config = MachineConfig::xiaomi_air13().with_fault_plan(plan);
        let seed = 0xFA5 + i as u64;
        let plain = probing_trial(config.clone(), seed, false);
        let traced = probing_trial(config, seed, true);
        assert_eq!(plain, traced, "fault plan {i}: traced run diverged");
    }
}
