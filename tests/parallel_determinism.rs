//! The parallel experiment engine must be architecturally invisible in
//! experiment results: a Table VII cell run at 1, 2, 4, and 8 workers
//! returns bit-identical trial results, and its shape check still holds.

use segscope_repro::attacks::kaslr::{hit_rates, run_trials, KaslrConfig, ProbeMethod, TimerKind};
use segscope_repro::segscope::Denoise;
use segscope_repro::segsim::MachineConfig;

/// Table VII, row "SegScope + Z-score denoising", C = 10 (reduced trial
/// count): the row that carries the paper's headline claim.
#[test]
fn table7_zscore_row_is_thread_count_invariant() {
    let config = KaslrConfig {
        method: ProbeMethod::Access,
        timer: TimerKind::SegScope(Denoise::ZScore),
        c: 10,
        k: 64,
        ..KaslrConfig::paper_default()
    };
    let machine = MachineConfig::lenovo_yangtian();
    let trials = 4;
    let seed = 0x7AB7_0001;

    let reference = run_trials(&machine, &config, seed, trials, Some(1));
    for threads in [2usize, 4, 8] {
        let parallel = run_trials(&machine, &config, seed, trials, Some(threads));
        assert_eq!(
            parallel, reference,
            "results diverged at {threads} worker threads"
        );
    }

    // The row's paper shape survives the reduced scale: Z-score denoising
    // at C = 10 recovers the KASLR base.
    let (top1, top5) = hit_rates(&reference, 5);
    assert!(top1 >= 0.75, "Z-score C=10 top-1 too low: {top1}");
    assert!(top5 >= top1, "top-5 must dominate top-1");
}

/// The `SEGSCOPE_THREADS` environment override is honored and equally
/// invisible in the results.
#[test]
fn env_thread_override_is_invisible() {
    let config = KaslrConfig {
        slots: 64,
        c: 1,
        k: 16,
        ..KaslrConfig::paper_default()
    };
    let machine = MachineConfig::xiaomi_air13();
    let explicit = run_trials(&machine, &config, 0x7AB7_0002, 3, Some(3));
    std::env::set_var(segscope_repro::exec::THREADS_ENV, "3");
    let via_env = run_trials(&machine, &config, 0x7AB7_0002, 3, None);
    std::env::remove_var(segscope_repro::exec::THREADS_ENV);
    assert_eq!(via_env, explicit);
}
