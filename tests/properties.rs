//! Property-based integration tests: the invariants that make SegScope
//! "fine-grained without false positives" must hold under randomized
//! machine configurations.

use proptest::prelude::*;
use segscope_repro::irq::Ps;
use segscope_repro::segscope::{InterruptGuard, SegProbe, ZScoreFilter};
use segscope_repro::segsim::{Machine, MachineConfig};
use segscope_repro::x86seg::Selector;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any seed and any HZ, the probe count equals the ground-truth
    /// interrupt count over the probing window.
    #[test]
    fn probe_count_equals_ground_truth(seed in 0u64..1_000_000, hz_idx in 0usize..3) {
        let hz = [100.0, 250.0, 1000.0][hz_idx];
        let mut machine = Machine::new(MachineConfig::xiaomi_air13().with_hz(hz), seed);
        machine.ground_truth_mut().clear();
        let mut probe = SegProbe::new();
        let samples = probe.probe_for(&mut machine, Ps::from_ms(400)).expect("probe");
        prop_assert_eq!(samples.len(), machine.ground_truth().len());
    }

    /// The interrupt guard's verdict always agrees with ground truth,
    /// for any window length.
    #[test]
    fn guard_agrees_with_ground_truth(seed in 0u64..1_000_000, spin in 100u64..2_000_000) {
        let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), seed);
        for _ in 0..5 {
            let t0 = machine.now();
            let guard = InterruptGuard::arm(&mut machine).expect("arm");
            machine.spin(spin);
            let clean = guard.finish(&mut machine);
            let t1 = machine.now();
            prop_assert_eq!(clean, !machine.ground_truth().any_in(t0, t1));
        }
    }

    /// SegCnt is always at least 1 and bounded by the physically possible
    /// iteration count for the observed interval.
    #[test]
    fn segcnt_is_physical(seed in 0u64..1_000_000) {
        let mut machine = Machine::new(MachineConfig::honor_magicbook(), seed);
        let mut probe = SegProbe::new();
        let max_khz = machine.config().freq.max_khz;
        let k = machine.probe_iter_cycles();
        for _ in 0..10 {
            let s = probe.probe_once(&mut machine).expect("probe");
            prop_assert!(s.segcnt >= 1);
            let interval = s.ended_at - s.started_at;
            let max_iters = interval.cycles_at(max_khz) as f64 / k * 1.02 + 2.0;
            prop_assert!(
                (s.segcnt as f64) <= max_iters,
                "segcnt {} exceeds physical bound {}", s.segcnt, max_iters
            );
        }
    }

    /// Machines are fully deterministic: same (config, seed) => identical
    /// probe traces.
    #[test]
    fn machine_determinism(seed in 0u64..1_000_000) {
        let run = |seed: u64| {
            let mut machine = Machine::new(MachineConfig::amazon_c5_large(), seed);
            let mut probe = SegProbe::new();
            probe
                .probe_n(&mut machine, 20)
                .expect("probe")
                .iter()
                .map(|s| s.segcnt)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Whatever data it is fit on, the Z-score filter always retains the
    /// sample closest to the mean of what it retains (non-degeneracy).
    #[test]
    fn zscore_filter_retains_its_own_center(
        samples in prop::collection::vec(-1.0e6f64..1.0e6, 4..64),
    ) {
        let filter = ZScoreFilter::fit(&samples, 2.0);
        prop_assert!(filter.retains(filter.mu()));
        let kept = filter.filter(&samples);
        // Retention is a subset, order-preserving.
        prop_assert!(kept.len() <= samples.len());
        for k in &kept {
            prop_assert!(samples.contains(k));
        }
    }

    /// Loading any selector that is *not* null either faults or leaves a
    /// non-null selector in GS — the probe can only ever be built from the
    /// four null values.
    #[test]
    fn only_null_selectors_make_silent_markers(raw in 0u16..512) {
        let mut machine = Machine::new(MachineConfig::default(), u64::from(raw));
        let sel = Selector::from_bits(raw);
        match machine.wrgs(sel) {
            Ok(()) => {
                let readback = machine.rdgs();
                prop_assert_eq!(readback, sel);
                if !sel.is_null() {
                    prop_assert!(!readback.is_null());
                }
            }
            Err(_) => prop_assert!(!sel.is_null(), "null selectors never fault"),
        }
    }
}
