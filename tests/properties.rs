//! Property-based integration tests: the invariants that make SegScope
//! "fine-grained without false positives" must hold under randomized
//! machine configurations.

use proptest::prelude::*;
use segscope_repro::irq::Ps;
use segscope_repro::segscope::{InterruptGuard, SegProbe, ZScoreFilter};
use segscope_repro::segsim::{Machine, MachineConfig};
use segscope_repro::x86seg::{
    load_data_segment, protected_mode_return, DataSegReg, DescriptorKind, DescriptorTables,
    PrivilegeLevel, SegError, SegmentDescriptor, SegmentRegisterFile, Selector, TableIndicator,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any seed and any HZ, the probe count equals the ground-truth
    /// interrupt count over the probing window.
    #[test]
    fn probe_count_equals_ground_truth(seed in 0u64..1_000_000, hz_idx in 0usize..3) {
        let hz = [100.0, 250.0, 1000.0][hz_idx];
        let mut machine = Machine::new(MachineConfig::xiaomi_air13().with_hz(hz), seed);
        machine.ground_truth_mut().clear();
        let mut probe = SegProbe::new();
        let samples = probe.probe_for(&mut machine, Ps::from_ms(400)).expect("probe");
        prop_assert_eq!(samples.len(), machine.ground_truth().len());
    }

    /// The interrupt guard's verdict always agrees with ground truth,
    /// for any window length.
    #[test]
    fn guard_agrees_with_ground_truth(seed in 0u64..1_000_000, spin in 100u64..2_000_000) {
        let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), seed);
        for _ in 0..5 {
            let t0 = machine.now();
            let guard = InterruptGuard::arm(&mut machine).expect("arm");
            machine.spin(spin);
            let clean = guard.finish(&mut machine);
            let t1 = machine.now();
            prop_assert_eq!(clean, !machine.ground_truth().any_in(t0, t1));
        }
    }

    /// SegCnt is always at least 1 and bounded by the physically possible
    /// iteration count for the observed interval.
    #[test]
    fn segcnt_is_physical(seed in 0u64..1_000_000) {
        let mut machine = Machine::new(MachineConfig::honor_magicbook(), seed);
        let mut probe = SegProbe::new();
        let max_khz = machine.config().freq.max_khz;
        let k = machine.probe_iter_cycles();
        for _ in 0..10 {
            let s = probe.probe_once(&mut machine).expect("probe");
            prop_assert!(s.segcnt >= 1);
            let interval = s.ended_at - s.started_at;
            let max_iters = interval.cycles_at(max_khz) as f64 / k * 1.02 + 2.0;
            prop_assert!(
                (s.segcnt as f64) <= max_iters,
                "segcnt {} exceeds physical bound {}", s.segcnt, max_iters
            );
        }
    }

    /// Machines are fully deterministic: same (config, seed) => identical
    /// probe traces.
    #[test]
    fn machine_determinism(seed in 0u64..1_000_000) {
        let run = |seed: u64| {
            let mut machine = Machine::new(MachineConfig::amazon_c5_large(), seed);
            let mut probe = SegProbe::new();
            probe
                .probe_n(&mut machine, 20)
                .expect("probe")
                .iter()
                .map(|s| s.segcnt)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Whatever data it is fit on, the Z-score filter always retains the
    /// sample closest to the mean of what it retains (non-degeneracy).
    #[test]
    fn zscore_filter_retains_its_own_center(
        samples in prop::collection::vec(-1.0e6f64..1.0e6, 4..64),
    ) {
        let filter = ZScoreFilter::fit(&samples, 2.0);
        prop_assert!(filter.retains(filter.mu()));
        let kept = filter.filter(&samples);
        // Retention is a subset, order-preserving.
        prop_assert!(kept.len() <= samples.len());
        for k in &kept {
            prop_assert!(samples.contains(k));
        }
    }

    /// Loading any selector that is *not* null either faults or leaves a
    /// non-null selector in GS — the probe can only ever be built from the
    /// four null values.
    #[test]
    fn only_null_selectors_make_silent_markers(raw in 0u16..512) {
        let mut machine = Machine::new(MachineConfig::default(), u64::from(raw));
        let sel = Selector::from_bits(raw);
        match machine.wrgs(sel) {
            Ok(()) => {
                let readback = machine.rdgs();
                prop_assert_eq!(readback, sel);
                if !sel.is_null() {
                    prop_assert!(!readback.is_null());
                }
            }
            Err(_) => prop_assert!(!sel.is_null(), "null selectors never fault"),
        }
    }
}

const DATA_REGS: [DataSegReg; 4] = [
    DataSegReg::Ds,
    DataSegReg::Es,
    DataSegReg::Fs,
    DataSegReg::Gs,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1's core primitive: every non-zero null selector
    /// (0x1–0x3) loads silently into *every* data register at any CPL,
    /// caches no descriptor, and is scrubbed back to zero — flagged as a
    /// null clear — on the next outward kernel→user return.
    #[test]
    fn nonzero_nulls_load_everywhere_and_scrub(
        reg_idx in 0usize..4,
        raw in 1u16..4,
        cpl_bits in 0u8..4,
    ) {
        let reg = DATA_REGS[reg_idx];
        let mut regs = SegmentRegisterFile::flat_user();
        let tables = DescriptorTables::linux_flat();
        let cpl = PrivilegeLevel::from_bits_truncate(cpl_bits);
        let sel = Selector::from_bits(raw);
        prop_assert!(sel.is_null() && !sel.is_zero());
        load_data_segment(&mut regs, reg, sel, &tables, cpl).expect("null loads never fault");
        prop_assert_eq!(regs.selector(reg).bits(), raw, "marker stored verbatim");
        prop_assert!(
            regs.register(reg).descriptor_cache().is_none(),
            "null loads must not cache a descriptor"
        );
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        prop_assert!(fp.cleared_as_null(reg), "non-zero null must be flagged on return");
        prop_assert!(regs.selector(reg).is_zero(), "marker must be scrubbed to 0");
    }

    /// RPL weakening: loading a kernel descriptor (DPL 0) with any
    /// non-zero RPL fails the privilege check even from ring 0, and the
    /// failed load leaves the register byte-identical.
    #[test]
    fn rpl_above_dpl_faults_and_leaves_register(
        reg_idx in 0usize..4,
        kernel_index in 1u16..3,
        rpl_bits in 1u8..4,
    ) {
        let reg = DATA_REGS[reg_idx];
        let mut regs = SegmentRegisterFile::flat_user();
        let tables = DescriptorTables::linux_flat();
        let before_sel = regs.selector(reg);
        let before_cache = regs.register(reg).descriptor_cache().copied();
        let sel = Selector::new(
            kernel_index,
            TableIndicator::Gdt,
            PrivilegeLevel::from_bits_truncate(rpl_bits),
        );
        let err = load_data_segment(&mut regs, reg, sel, &tables, PrivilegeLevel::Ring0)
            .expect_err("RPL > DPL must fault");
        prop_assert!(
            matches!(err, SegError::PrivilegeViolation { .. }),
            "expected a privilege fault, got {err:?}"
        );
        prop_assert_eq!(regs.selector(reg), before_sel, "failed load must not touch selector");
        prop_assert_eq!(
            regs.register(reg).descriptor_cache().copied(),
            before_cache,
            "failed load must not touch the cache"
        );
    }

    /// The Linux flat model ships an empty LDT: any LDT-bit selector is
    /// out of range no matter the index, RPL, or CPL, and the register
    /// survives untouched.
    #[test]
    fn ldt_selectors_fault_on_empty_ldt(
        reg_idx in 0usize..4,
        index in 0u16..512,
        rpl_bits in 0u8..4,
        cpl_bits in 0u8..4,
    ) {
        let reg = DATA_REGS[reg_idx];
        let mut regs = SegmentRegisterFile::flat_user();
        let tables = DescriptorTables::linux_flat();
        let before_sel = regs.selector(reg);
        let sel = Selector::new(
            index,
            TableIndicator::Ldt,
            PrivilegeLevel::from_bits_truncate(rpl_bits),
        );
        prop_assert!(!sel.is_null(), "TI=1 selectors are never null");
        let err = load_data_segment(
            &mut regs,
            reg,
            sel,
            &tables,
            PrivilegeLevel::from_bits_truncate(cpl_bits),
        )
        .expect_err("empty LDT has no valid entries");
        prop_assert!(
            matches!(err, SegError::IndexOutOfRange { .. }),
            "expected index-out-of-range, got {err:?}"
        );
        prop_assert_eq!(regs.selector(reg), before_sel);
    }

    /// Descriptor-cache staleness: once loaded, the cached descriptor —
    /// not the live GDT — decides the outward-return scrub. Removing or
    /// re-installing the entry after the load must not change the
    /// verdict.
    #[test]
    fn return_scrub_uses_stale_descriptor_cache(
        reg_idx in 0usize..4,
        index in 5u16..12,
        remove_flag in 0u8..2,
    ) {
        let remove_instead_of_weaken = remove_flag == 1;
        let reg = DATA_REGS[reg_idx];
        let mut regs = SegmentRegisterFile::flat_user();
        let mut tables = DescriptorTables::linux_flat();
        let kernel_data = SegmentDescriptor::new(
            0,
            u64::from(u32::MAX),
            PrivilegeLevel::Ring0,
            DescriptorKind::Data { writable: true, expand_down: false },
        );
        tables.gdt.install(index, kernel_data);
        let sel = Selector::new(index, TableIndicator::Gdt, PrivilegeLevel::Ring0);
        load_data_segment(&mut regs, reg, sel, &tables, PrivilegeLevel::Ring0)
            .expect("fresh kernel data segment loads at ring 0");
        // Mutate the table out from under the loaded register.
        if remove_instead_of_weaken {
            tables.gdt.remove(index);
        } else {
            let user_data = SegmentDescriptor::new(
                0,
                u64::from(u32::MAX),
                PrivilegeLevel::Ring3,
                DescriptorKind::Data { writable: true, expand_down: false },
            );
            tables.gdt.install(index, user_data);
        }
        let cached = regs.register(reg).descriptor_cache().expect("cache survives table edits");
        prop_assert_eq!(cached.dpl(), PrivilegeLevel::Ring0, "cache holds the load-time DPL");
        let fp = protected_mode_return(&mut regs, PrivilegeLevel::Ring3, PrivilegeLevel::Ring0);
        prop_assert!(
            fp.cleared_as_sensitive(reg),
            "stale DPL-0 cache must still trigger the sensitive scrub"
        );
        prop_assert!(regs.selector(reg).is_zero());
    }
}
