//! Parity tests of the `Scenario` registry/CLI driver (C-SCENARIO):
//!
//! 1. every registered scenario's report is **bit-identical at 1, 2, and
//!    4 worker threads** — the determinism contract the CLI inherits from
//!    `exec`;
//! 2. the driver's per-trial outputs equal what the **direct per-attack
//!    APIs** produce for the same derived seeds (outputs are
//!    deterministic functions of every RNG draw, so equality here pins
//!    the RNG stream positions too);
//! 3. the machine the driver builds sits at the **same RNG position** as
//!    one built by the pre-registry construction sequence.

use rand::Rng;
use segscope_repro::attacks::{self, covert, kaslr, keystroke};
use segscope_repro::exec;
use segscope_repro::memsim::KaslrLayout;
use segscope_repro::scenario::{run_scenario, RunOptions, Scenario, TrialCtx};
use segscope_repro::segsim::Machine;
use serde::Serialize;

fn report_json(name: &str, threads: usize) -> String {
    let entry = attacks::registry().get(name).expect("registered");
    let opts = RunOptions {
        threads: Some(threads),
        ..RunOptions::default()
    };
    let run = entry.run_dyn(None, &opts).expect("default params run");
    serde_json::to_string(&run.report).expect("report serializes")
}

/// The cheap scenarios cover the full 1/2/4 grid; the expensive
/// model-training ones (`website`, `dnnsteal`) prove the same contract on
/// 1 vs 2 threads to keep the suite fast.
#[test]
fn reports_are_bit_identical_across_thread_counts() {
    for name in [
        "covert",
        "kaslr",
        "keystroke",
        "procfp",
        "circl",
        "spectre",
        "spectral",
    ] {
        let reference = report_json(name, 1);
        for threads in [2, 4] {
            assert_eq!(
                report_json(name, threads),
                reference,
                "{name} report differs at {threads} threads"
            );
        }
    }
    for name in ["website", "dnnsteal"] {
        assert_eq!(
            report_json(name, 1),
            report_json(name, 2),
            "{name} report differs at 2 threads"
        );
    }
}

#[test]
fn covert_driver_matches_direct_transmissions() {
    let cfg = covert::CovertScenarioConfig::default();
    let bits = covert::bitstring_to_bits(&cfg.payload);
    for threads in [1, 2, 4] {
        let opts = RunOptions {
            threads: Some(threads),
            ..RunOptions::default()
        };
        let run = run_scenario(&covert::CovertScenario, &cfg, &opts);
        assert_eq!(run.trials, run.outputs.len());
        for (i, out) in run.outputs.iter().enumerate() {
            let direct =
                covert::transmit(&cfg.channel, &bits, exec::derive_seed(run.seed, i as u64));
            assert_eq!(out, &direct, "covert trial {i} at {threads} threads");
        }
    }
}

#[test]
fn kaslr_driver_matches_direct_breaks() {
    let cfg = kaslr::KaslrScenarioConfig::default();
    for threads in [1, 2, 4] {
        let opts = RunOptions {
            threads: Some(threads),
            trials: Some(4),
            ..RunOptions::default()
        };
        let run = run_scenario(&kaslr::KaslrScenario, &cfg, &opts);
        for (i, out) in run.outputs.iter().enumerate() {
            let direct = kaslr::break_kaslr_fresh(
                cfg.machine.clone(),
                &cfg.attack,
                exec::derive_seed(run.seed, i as u64),
            );
            assert_eq!(out, &direct, "kaslr trial {i} at {threads} threads");
        }
    }
}

#[test]
fn keystroke_dyn_report_matches_typed_api() {
    let summary = keystroke::identify_users(&keystroke::KeystrokeConfig::quick());
    let entry = attacks::registry().get("keystroke").expect("registered");
    let run = entry
        .run_dyn(None, &RunOptions::default())
        .expect("default params run");
    assert_eq!(run.report.summary, summary.to_value());
}

/// The driver's `build_machine` must leave the machine RNG exactly where
/// the pre-registry construction sequence left it — one extra draw
/// anywhere would silently shift every downstream sample.
#[test]
fn built_machines_sit_at_the_direct_rng_position() {
    let cfg = kaslr::KaslrScenarioConfig::default();
    let ctx = TrialCtx {
        index: 0,
        seed: exec::derive_seed(0x6A51, 0),
        experiment_seed: 0x6A51,
    };
    let mut via_driver = kaslr::KaslrScenario.build_machine(&cfg, &ctx);
    let mut direct = Machine::new(cfg.machine.clone(), ctx.seed);
    let layout = KaslrLayout::randomize(direct.rng_mut());
    direct.set_kaslr(layout);
    assert_eq!(direct.kaslr(), via_driver.kaslr(), "same randomized layout");
    for draw in 0..4 {
        assert_eq!(
            via_driver.rng_mut().gen::<u64>(),
            direct.rng_mut().gen::<u64>(),
            "RNG streams diverge at draw {draw}"
        );
    }
}
