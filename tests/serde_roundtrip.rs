//! Serde round-trip tests for the workspace's public data types
//! (C-SERDE): configurations and results must serialize losslessly so
//! experiment setups and outcomes can be persisted and replayed.

use segscope_repro::attacks::covert::CovertConfig;
use segscope_repro::attacks::kaslr::{KaslrConfig, KaslrResult};
use segscope_repro::attacks::spectral::SpectralConfig;
use segscope_repro::attacks::website::{Browser, Setting, WebsiteFpConfig, WebsiteProfile};
use segscope_repro::irq::{HandlerCostModel, InterruptKind, Ps};
use segscope_repro::memsim::{HierarchyConfig, KaslrLayout, KaslrTiming, MemoryHierarchy};
use segscope_repro::segscope::{Denoise, ZScoreFilter};
use segscope_repro::segsim::{FreqConfig, MachineConfig, NoiseModel, StepFn};
use segscope_repro::x86seg::{
    DescriptorTables, PrivilegeLevel, SegmentDescriptor, SegmentRegisterFile, Selector,
};
use serde::{de::DeserializeOwned, Serialize};
use std::fmt::Debug;

fn round_trip<T: Serialize + DeserializeOwned + PartialEq + Debug>(value: &T) {
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value, "round trip changed the value");
}

#[test]
fn machine_configs_round_trip() {
    for config in MachineConfig::table1() {
        round_trip(&config);
    }
    round_trip(&FreqConfig::desktop(3_600, 4_000));
    round_trip(&NoiseModel::quiet());
    round_trip(&NoiseModel::virtualized());
    round_trip(&HandlerCostModel::paper_default());
}

#[test]
fn substrate_types_round_trip() {
    round_trip(&HierarchyConfig::client_default());
    round_trip(&KaslrTiming::client_default());
    round_trip(&KaslrLayout::with_slot(99));
    round_trip(&Selector::from_bits(0x2b));
    round_trip(&PrivilegeLevel::Ring2);
    round_trip(&SegmentDescriptor::flat_data(PrivilegeLevel::Ring3));
    round_trip(&DescriptorTables::linux_flat());
    round_trip(&SegmentRegisterFile::flat_user());
    round_trip(&Ps::from_us(1234));
    for kind in InterruptKind::ALL {
        round_trip(&kind);
    }
    // A warm cache hierarchy (non-trivial internal state).
    let mut mem = MemoryHierarchy::default();
    mem.access(0x1000);
    mem.access(0x2000);
    round_trip(&mem);
}

#[test]
fn attack_configs_round_trip() {
    round_trip(&KaslrConfig::paper_default());
    round_trip(&SpectralConfig::paper_default());
    round_trip(&CovertConfig::slow());
    round_trip(&WebsiteFpConfig::quick(Browser::Tor, Setting::Default));
    round_trip(&WebsiteProfile::for_site(12));
    round_trip(&Denoise::ZScoreAndFreq);
    round_trip(&ZScoreFilter::new(10.0, 2.0, 2.0));
    let mut step = StepFn::zero();
    step.push(Ps::from_ms(1), 0.5);
    step.push(Ps::from_ms(2), 1.0);
    round_trip(&step);
}

#[test]
fn results_round_trip_and_replay() {
    // A real experiment result survives persistence (the replay story).
    let result = KaslrResult {
        ranking: vec![17, 3, 255],
        secret_slot: 17,
        elapsed_s: 10.5,
    };
    round_trip(&result);
    let json = serde_json::to_string(&result).expect("serialize");
    let back: KaslrResult = serde_json::from_str(&json).expect("deserialize");
    assert!(back.top1_hit());
    assert!(back.top_n_hit(2));
}
