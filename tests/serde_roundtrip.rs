//! Serde round-trip tests for the workspace's public data types
//! (C-SERDE): configurations and results must serialize losslessly so
//! experiment setups and outcomes can be persisted and replayed.
//!
//! The observability types get property-based coverage (every
//! [`obs::EventKind`] variant over random payloads) plus a golden-file
//! check of the Chrome `trace_event` exporter — regenerate the golden
//! with `SEGSCOPE_BLESS=1 cargo test --test serde_roundtrip`.

use proptest::prelude::*;
use segscope_repro::attacks::circl::CirclConfig;
use segscope_repro::attacks::covert::{CovertConfig, CovertScenarioConfig};
use segscope_repro::attacks::dnnsteal::DnnStealConfig;
use segscope_repro::attacks::kaslr::{KaslrConfig, KaslrResult, KaslrScenarioConfig};
use segscope_repro::attacks::keystroke::KeystrokeConfig;
use segscope_repro::attacks::procfp::ProcFpConfig;
use segscope_repro::attacks::spectral::{SpectralConfig, SpectralScenarioConfig};
use segscope_repro::attacks::spectre::{SpectreConfig, SpectreScenarioConfig};
use segscope_repro::attacks::website::{Browser, Setting, WebsiteFpConfig, WebsiteProfile};
use segscope_repro::irq::{HandlerCostModel, InterruptKind, Ps};
use segscope_repro::memsim::{HierarchyConfig, KaslrLayout, KaslrTiming, MemoryHierarchy};
use segscope_repro::obs;
use segscope_repro::segscope::{Denoise, ZScoreFilter};
use segscope_repro::segsim::{FreqConfig, MachineConfig, NoiseModel, StepFn};
use segscope_repro::x86seg::{
    DescriptorTables, PrivilegeLevel, SegmentDescriptor, SegmentRegisterFile, Selector,
};
use serde::{de::DeserializeOwned, Serialize};
use std::fmt::Debug;

fn round_trip<T: Serialize + DeserializeOwned + PartialEq + Debug>(value: &T) {
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value, "round trip changed the value");
}

#[test]
fn machine_configs_round_trip() {
    for config in MachineConfig::table1() {
        round_trip(&config);
    }
    round_trip(&FreqConfig::desktop(3_600, 4_000));
    round_trip(&NoiseModel::quiet());
    round_trip(&NoiseModel::virtualized());
    round_trip(&HandlerCostModel::paper_default());
}

#[test]
fn substrate_types_round_trip() {
    round_trip(&HierarchyConfig::client_default());
    round_trip(&KaslrTiming::client_default());
    round_trip(&KaslrLayout::with_slot(99));
    round_trip(&Selector::from_bits(0x2b));
    round_trip(&PrivilegeLevel::Ring2);
    round_trip(&SegmentDescriptor::flat_data(PrivilegeLevel::Ring3));
    round_trip(&DescriptorTables::linux_flat());
    round_trip(&SegmentRegisterFile::flat_user());
    round_trip(&Ps::from_us(1234));
    for kind in InterruptKind::ALL {
        round_trip(&kind);
    }
    // A warm cache hierarchy (non-trivial internal state).
    let mut mem = MemoryHierarchy::default();
    mem.access(0x1000);
    mem.access(0x2000);
    round_trip(&mem);
}

#[test]
fn attack_configs_round_trip() {
    round_trip(&KaslrConfig::paper_default());
    round_trip(&SpectralConfig::paper_default());
    round_trip(&CovertConfig::slow());
    round_trip(&WebsiteFpConfig::quick(Browser::Tor, Setting::Default));
    round_trip(&WebsiteProfile::for_site(12));
    round_trip(&KeystrokeConfig::quick());
    round_trip(&SpectreConfig::paper_default());
    round_trip(&CirclConfig::paper());
    round_trip(&ProcFpConfig::quick());
    round_trip(&DnnStealConfig::bench());
    round_trip(&Denoise::ZScoreAndFreq);
    round_trip(&ZScoreFilter::new(10.0, 2.0, 2.0));
    let mut step = StepFn::zero();
    step.push(Ps::from_ms(1), 0.5);
    step.push(Ps::from_ms(2), 1.0);
    round_trip(&step);
}

/// Every registered scenario's config round-trips from its `Default` —
/// the exact value `segscope run <name>` uses when `--params` is omitted.
#[test]
fn scenario_default_configs_round_trip() {
    round_trip(&CovertConfig::default());
    round_trip(&CovertScenarioConfig::default());
    round_trip(&KeystrokeConfig::default());
    round_trip(&KaslrConfig::default());
    round_trip(&KaslrScenarioConfig::default());
    round_trip(&SpectreConfig::default());
    round_trip(&SpectreScenarioConfig::default());
    round_trip(&WebsiteFpConfig::default());
    round_trip(&CirclConfig::default());
    round_trip(&ProcFpConfig::default());
    round_trip(&SpectralConfig::default());
    round_trip(&SpectralScenarioConfig::default());
    round_trip(&DnnStealConfig::default());
}

#[test]
fn results_round_trip_and_replay() {
    // A real experiment result survives persistence (the replay story).
    let result = KaslrResult {
        ranking: vec![17, 3, 255],
        secret_slot: 17,
        elapsed_s: 10.5,
    };
    round_trip(&result);
    let json = serde_json::to_string(&result).expect("serialize");
    let back: KaslrResult = serde_json::from_str(&json).expect("deserialize");
    assert!(back.top1_hit());
    assert!(back.top_n_hit(2));
}

/// Maps three random integers onto one of the eleven [`obs::EventKind`]
/// variants, covering every payload shape.
fn obs_event_kind(sel: usize, a: u64, b: u64) -> obs::EventKind {
    use obs::{EventKind, FaultKind, IrqClass, SegRegId};
    let irq = IrqClass::ALL[(a % IrqClass::ALL.len() as u64) as usize];
    match sel % 11 {
        0 => EventKind::IrqDelivered {
            irq,
            handler_cost_ps: b,
        },
        1 => EventKind::IrqDropped { irq },
        2 => EventKind::IrqCoalesced { irq },
        3 => EventKind::IrqDuplicated {
            irq,
            ghost_at_ps: b,
        },
        4 => EventKind::SegClear {
            reg: SegRegId::ALL[(a % SegRegId::ALL.len() as u64) as usize],
            null: b.is_multiple_of(2),
        },
        5 => EventKind::KernelReturn {
            cleared: (a % 5) as u8,
            kernel_span_ps: b,
        },
        6 => EventKind::FreqTransition {
            from_khz: a,
            to_khz: b,
        },
        7 => EventKind::ProbeSample { segcnt: a, irq },
        8 => EventKind::FaultInjected {
            fault: [
                FaultKind::HandlerJitter,
                FaultKind::SmtBurst,
                FaultKind::ClampedFreqStep,
            ][(a % 3) as usize],
        },
        9 => EventKind::TrialStart { index: a },
        _ => EventKind::TrialEnd { index: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every event variant survives JSON persistence, payload intact.
    #[test]
    fn obs_events_round_trip(
        at_ps in any::<u64>(),
        track in any::<u32>(),
        sel in 0usize..11,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let event = obs::Event { at_ps, track, kind: obs_event_kind(sel, a, b) };
        let json = serde_json::to_string(&event).expect("serialize");
        let back: obs::Event = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, event);
        // The JSON-lines path decodes the same encoding.
        let events = obs::export::from_jsonl(&obs::export::jsonl(&{
            let mut sink = obs::TraceSink::with_capacity(4);
            sink.record(event);
            sink
        })).expect("jsonl parses");
        prop_assert_eq!(events, vec![event]);
    }

    /// A metrics snapshot (counters, histograms, phases) round-trips.
    #[test]
    fn obs_metrics_round_trip(
        values in proptest::collection::vec(any::<u64>(), 1..24),
        calls in 1u64..40,
        span in 0u64..1_000_000,
    ) {
        let mut metrics = obs::Metrics::new();
        for &v in &values {
            metrics.incr("counter", v % 1000);
            metrics.observe("histogram", v);
        }
        for i in 0..calls {
            metrics.phase("phase", i * span, i * span + span);
        }
        let json = serde_json::to_string(&metrics).expect("serialize");
        let back: obs::Metrics = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, metrics);
    }

    /// A populated sink — ring state, drop counter, metrics — round-trips
    /// whole.
    #[test]
    fn obs_sink_round_trips_including_overflow(
        count in 1usize..40,
        capacity in 1usize..16,
    ) {
        let mut sink = obs::TraceSink::with_capacity(capacity);
        for i in 0..count {
            sink.emit(i as u64 * 10, obs_event_kind(i, i as u64, i as u64 + 1));
        }
        sink.metrics.incr("events", count as u64);
        round_trip(&sink);
    }
}

/// The Chrome exporter's exact output is pinned by a golden file: one
/// event of every kind on a deterministic timeline, plus metrics in
/// `otherData`. Any format drift must be a conscious re-bless.
#[test]
fn chrome_exporter_matches_golden() {
    use obs::EventKind;
    let mut sink = obs::TraceSink::with_capacity(64);
    sink.emit(
        1_000_000,
        EventKind::IrqDelivered {
            irq: obs::IrqClass::Timer,
            handler_cost_ps: 250_000,
        },
    );
    sink.emit(
        2_500_000,
        EventKind::IrqDropped {
            irq: obs::IrqClass::Keyboard,
        },
    );
    sink.emit(
        3_000_000,
        EventKind::IrqCoalesced {
            irq: obs::IrqClass::Network,
        },
    );
    sink.emit(
        3_200_000,
        EventKind::IrqDuplicated {
            irq: obs::IrqClass::Timer,
            ghost_at_ps: 4_000_000,
        },
    );
    sink.emit(
        4_100_000,
        EventKind::SegClear {
            reg: obs::SegRegId::Gs,
            null: true,
        },
    );
    sink.emit(
        4_100_000,
        EventKind::KernelReturn {
            cleared: 1,
            kernel_span_ps: 300_000,
        },
    );
    sink.emit(
        5_000_000,
        EventKind::FreqTransition {
            from_khz: 3_400_000,
            to_khz: 3_000_000,
        },
    );
    sink.emit(
        6_000_000,
        EventKind::ProbeSample {
            segcnt: 1234,
            irq: obs::IrqClass::Timer,
        },
    );
    sink.emit(
        6_500_000,
        EventKind::FaultInjected {
            fault: obs::FaultKind::HandlerJitter,
        },
    );
    sink.emit(0, EventKind::TrialStart { index: 0 });
    sink.emit(7_000_000, EventKind::TrialEnd { index: 0 });
    sink.metrics.incr("irq.delivered", 1);
    sink.metrics.observe("irq.handler_cost_ps", 250_000);
    sink.metrics.phase("probe.interval", 5_000_000, 6_000_000);
    let actual = obs::export::chrome_trace(&sink);

    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json");
    if std::env::var("SEGSCOPE_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, &actual).expect("golden file writable");
        return;
    }
    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SEGSCOPE_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, blessed,
        "Chrome exporter drift; if intentional, regenerate with \
         SEGSCOPE_BLESS=1 cargo test --test serde_roundtrip"
    );
    // Sanity: the golden is well-formed enough for chrome://tracing.
    assert!(actual.starts_with("{\"displayTimeUnit\":\"ns\""));
    assert_eq!(obs::export::chrome_delivery_count(&actual), 1);
}
