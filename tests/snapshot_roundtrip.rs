//! Restore-exactness of [`segsim::Snapshot`] under adversarial pause
//! points: across every Table I vendor preset × fault-plan regime, a
//! machine paused at a *random* step, snapshotted, pushed through a full
//! JSON serialize/deserialize cycle, and restored into a deliberately
//! wrecked machine must continue bit-identically to the machine that
//! was never paused — same observable samples, same [`FaultLog`], same
//! ground-truth records, same final RNG position.
//!
//! This is the contract the record-and-replay driver and the divergence
//! bisector (`segscope_repro::replay`) stand on.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use segscope_repro::irq::time::Ps;
use segscope_repro::segsim::{presets, Defense, FaultPlan, Machine, MachineConfig, Snapshot};
use segscope_repro::x86seg::Selector;

/// Workload steps per trial; the pause point ranges over all of them.
const STEPS: usize = 24;

/// One observable output per workload step: simulated time, the GS
/// selector after the span, kernel entries so far, and an L1-timing
/// sample — every layer a snapshot must carry.
type StepSample = (u64, u16, u64, u64);

/// The fault regimes the proptest sweeps: none, delivery faults
/// (drops + duplicates), and timing faults (jitter + clamps + bursts).
fn plan_for(index: u8) -> Option<FaultPlan> {
    match index % 3 {
        0 => None,
        1 => Some(
            FaultPlan::delivery_storm()
                .with_drop_prob(0.12)
                .with_duplicate_prob(0.08),
        ),
        _ => Some(FaultPlan::timing_storm()),
    }
}

fn config_for(preset: usize, plan: u8) -> MachineConfig {
    let name = presets::NAMES[preset % presets::NAMES.len()];
    let config = presets::by_name(name).expect("NAMES entries resolve");
    match plan_for(plan) {
        Some(p) => config.with_fault_plan(p),
        None => config,
    }
}

/// Runs one workload step, mixing segment writes, user spans, guest
/// compute, and memory traffic so every snapshot field is live.
fn step(machine: &mut Machine, index: usize) -> StepSample {
    let sel = Selector::from_bits(1 + (index % 3) as u16);
    machine.wrgs(sel).expect("flat selectors load");
    let deadline = machine.now() + Ps::from_us(600 + (index as u64 % 5) * 90);
    let _ = machine.run_user_until(deadline);
    machine.spin(2_000 + (index as u64 % 7) * 350);
    let timing = machine.mem_access(0x4000 + (index as u64) * 0x140).cycles;
    (
        machine.now().as_ps(),
        machine.rdgs().bits(),
        machine.kernel_entries(),
        timing,
    )
}

/// Everything the round-trip must preserve bit-for-bit.
#[derive(Debug, PartialEq)]
struct Observables {
    samples: Vec<StepSample>,
    fault_log: segscope_repro::irq::FaultLog,
    ground_truth: Vec<segscope_repro::irq::IrqRecord>,
    rng_state: [u64; 4],
}

fn finish(machine: &mut Machine, samples: Vec<StepSample>) -> Observables {
    Observables {
        samples,
        fault_log: *machine.fault_log(),
        ground_truth: machine.ground_truth().records().to_vec(),
        rng_state: machine.rng_mut().state(),
    }
}

/// The uninterrupted reference: all `STEPS` steps, no pause.
fn uninterrupted(config: &MachineConfig, seed: u64) -> Observables {
    let mut machine = Machine::new(config.clone(), seed);
    let samples = (0..STEPS).map(|i| step(&mut machine, i)).collect();
    finish(&mut machine, samples)
}

/// The paused run: `pause` steps, snapshot → JSON → parse → restore
/// into a wrecked machine, then the remaining steps.
fn paused(config: &MachineConfig, seed: u64, pause: usize) -> Observables {
    let mut machine = Machine::new(config.clone(), seed);
    let mut samples: Vec<StepSample> = (0..pause).map(|i| step(&mut machine, i)).collect();
    let json = serde_json::to_string(&machine.snapshot()).expect("snapshots serialize");
    let revived: Snapshot = serde_json::from_str(&json).expect("snapshots parse");
    // Restore into a machine that has drifted far from the snapshot —
    // different config, seed, and history — so the test proves restore
    // rebuilds *everything*, not just what the wreck left untouched.
    machine.reset(MachineConfig::default(), !seed);
    machine.spin(500_000);
    machine.restore(&revived);
    samples.extend((pause..STEPS).map(|i| step(&mut machine, i)));
    finish(&mut machine, samples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: preset × fault plan × random pause point,
    /// through a full JSON cycle, is bit-identical to never pausing.
    #[test]
    fn snapshot_json_roundtrip_is_restore_exact(gen_seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let preset = rng.gen_range(0..presets::NAMES.len());
        let plan = rng.gen_range(0u8..3);
        let pause = rng.gen_range(0..=STEPS);
        let seed = rng.gen::<u64>();
        let config = config_for(preset, plan);
        let reference = uninterrupted(&config, seed);
        let resumed = paused(&config, seed, pause);
        prop_assert_eq!(
            &resumed, &reference,
            "preset {} plan {} pause {}", presets::NAMES[preset], plan, pause
        );
    }
}

/// Defense-state observables on top of [`Observables`]: the countermeasure
/// layer a snapshot must carry (enclave lifecycle, AEX and pad counters).
#[derive(Debug, PartialEq)]
struct DefendedObservables {
    base: Observables,
    aex_exits: u64,
    padded_exits: u64,
    destroyed: bool,
}

/// One enclave-touching workload step: windows open on step 1 (mod 4)
/// and close on step 3 (mod 4), so pause points land before, inside,
/// and after active enclave windows.
fn defended_step(machine: &mut Machine, index: usize) -> StepSample {
    if index % 4 == 1 {
        let _ = machine.enter_enclave();
    }
    let sample = step(machine, index);
    if index % 4 == 3 {
        machine.exit_enclave();
    }
    sample
}

fn defended_finish(machine: &mut Machine, samples: Vec<StepSample>) -> DefendedObservables {
    DefendedObservables {
        aex_exits: machine.aex_exits(),
        padded_exits: machine.padded_exits(),
        destroyed: machine.enclave_destroyed(),
        base: finish(machine, samples),
    }
}

/// Snapshot/JSON/restore round trip with a countermeasure armed and an
/// enclave window possibly open at the pause point: the defense state
/// (destroyed flag, pad grid phase, AEX counters) must restore exactly.
#[test]
fn defended_machines_survive_mid_enclave_pause_points() {
    let defenses = [
        ("none", Defense::None),
        ("quanshield", Defense::QuanShield),
        ("padding", Defense::default_padding()),
    ];
    for (name, defense) in defenses {
        let config = presets::by_name("xiaomi_air13")
            .expect("preset exists")
            .with_defense(defense);
        let seed = 0xDEF5 ^ name.len() as u64;
        let reference = {
            let mut machine = Machine::new(config.clone(), seed);
            let samples = (0..STEPS).map(|i| defended_step(&mut machine, i)).collect();
            defended_finish(&mut machine, samples)
        };
        match defense {
            Defense::None => assert_eq!(reference.padded_exits, 0),
            Defense::QuanShield => assert!(reference.destroyed),
            Defense::Padding { .. } => assert!(reference.padded_exits > 0),
        }
        for pause in 0..=STEPS {
            let mut machine = Machine::new(config.clone(), seed);
            let mut samples: Vec<StepSample> =
                (0..pause).map(|i| defended_step(&mut machine, i)).collect();
            let json = serde_json::to_string(&machine.snapshot()).expect("snapshots serialize");
            let revived: Snapshot = serde_json::from_str(&json).expect("snapshots parse");
            machine.reset(MachineConfig::default(), !seed);
            machine.spin(500_000);
            machine.restore(&revived);
            samples.extend((pause..STEPS).map(|i| defended_step(&mut machine, i)));
            assert_eq!(
                defended_finish(&mut machine, samples),
                reference,
                "defense {name} pause {pause}"
            );
        }
    }
}

/// Deterministic floor under the proptest: every preset × every fault
/// regime at fixed early/mid/late pause points, so a regression names
/// the failing preset even if the random sweep misses it.
#[test]
fn every_preset_and_plan_survives_fixed_pause_points() {
    for (preset, name) in presets::NAMES.iter().enumerate() {
        for plan in 0u8..3 {
            let config = config_for(preset, plan);
            let seed = 0xC0DE ^ ((preset as u64) << 8) ^ u64::from(plan);
            let reference = uninterrupted(&config, seed);
            for pause in [0, STEPS / 2, STEPS] {
                assert_eq!(
                    paused(&config, seed, pause),
                    reference,
                    "preset {name} plan {plan} pause {pause}"
                );
            }
        }
    }
}
