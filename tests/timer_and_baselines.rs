//! Integration tests for the SegScope timer and the timer-based
//! baselines across the crate boundary.

use segscope_repro::irq::Ps;
use segscope_repro::segscope::{
    CountingThreadTimer, Denoise, LoopCountProber, SegTimer, TsJumpProber,
};
use segscope_repro::segsim::{Machine, MachineConfig, SimError};

fn warmed(config: MachineConfig, seed: u64) -> Machine {
    let mut machine = Machine::new(config, seed);
    machine.spin(600_000_000);
    machine
}

/// The timer calibrates and measures on every Table I machine, and the
/// measured ticks scale ~linearly with the workload size.
#[test]
fn timer_linearity_across_machines() {
    for (i, config) in MachineConfig::table1().into_iter().enumerate() {
        let mut machine = warmed(config.clone(), 0x71E + i as u64);
        let mut timer = SegTimer::calibrate(&mut machine, 150, Denoise::ZScore).expect("calibrate");
        let a = timer
            .measure(&mut machine, 15, |m| m.spin(500_000))
            .expect("measure");
        let b = timer
            .measure(&mut machine, 15, |m| m.spin(2_000_000))
            .expect("measure");
        let ratio = b.mean_ticks / a.mean_ticks.max(1.0);
        assert!(
            (2.5..6.0).contains(&ratio),
            "{}: 4x workload should read ~4x ticks, got {ratio:.2}",
            config.name
        );
    }
}

/// The whole point: the SegScope timer works under CR4.TSD while both
/// architectural-timer baselines fault.
#[test]
fn only_segscope_survives_the_threat_model() {
    let config = MachineConfig::lenovo_yangtian().with_cr4_tsd(true);
    let mut machine = warmed(config, 0x71F);
    // Baselines: dead.
    assert_eq!(
        TsJumpProber::paper_default().probe_for(&mut machine, Ps::from_ms(50)),
        Err(SimError::TimerRestricted)
    );
    assert_eq!(
        LoopCountProber::paper_default().sample_window(&mut machine),
        Err(SimError::TimerRestricted)
    );
    // SegScope timer: alive.
    let mut timer = SegTimer::calibrate(&mut machine, 120, Denoise::ZScore).expect("calibrate");
    let stats = timer
        .measure(&mut machine, 10, |m| m.spin(1_000_000))
        .expect("measure");
    assert!(stats.mean_ticks > 0.0);
    // The counting thread also survives (it needs no architectural
    // timer), as the paper acknowledges — it is just less stable.
    let mut ct = CountingThreadTimer::start(&mut machine);
    machine.spin(100_000);
    assert!(ct.elapsed(&mut machine) > 0);
}

/// Denoising strictly helps: the Z-score timer's spread on a fixed
/// workload is no worse than the raw timer's.
#[test]
fn zscore_denoising_tightens_measurements() {
    let mut machine = warmed(MachineConfig::xiaomi_air13(), 0x720);
    let mut raw = SegTimer::calibrate(&mut machine, 150, Denoise::None).expect("calibrate");
    let mut samples_raw = Vec::new();
    for _ in 0..40 {
        samples_raw.push(
            raw.time(&mut machine, |m| m.spin(800_000))
                .expect("time")
                .ticks,
        );
    }
    let mut z = SegTimer::calibrate(&mut machine, 150, Denoise::ZScore).expect("calibrate");
    let stats = z
        .measure(&mut machine, 40, |m| m.spin(800_000))
        .expect("measure");
    let raw_std = segscope_repro::segscope::std_dev(&samples_raw);
    assert!(
        stats.std_ticks <= raw_std * 1.1,
        "zscore std {} vs raw std {}",
        stats.std_ticks,
        raw_std
    );
}

/// Baseline cross-check (paper Section III-B): the timestamp-jump prober
/// never undercounts but does overcount; SegScope never does either.
#[test]
fn overcount_asymmetry() {
    let mut machine = warmed(MachineConfig::lenovo_yangtian(), 0x721);
    machine.ground_truth_mut().clear();
    let detections = TsJumpProber::paper_default()
        .probe_for(&mut machine, Ps::from_secs(3))
        .expect("rdtsc allowed");
    let truth = machine.ground_truth().len() as u64;
    assert!(
        detections > truth,
        "baseline should overcount: {detections} vs {truth}"
    );

    let mut machine = warmed(MachineConfig::lenovo_yangtian(), 0x722);
    machine.ground_truth_mut().clear();
    let samples = segscope_repro::segscope::SegProbe::new()
        .probe_for(&mut machine, Ps::from_secs(3))
        .expect("probe");
    assert_eq!(samples.len(), machine.ground_truth().len());
}

/// The interrupt guard makes micro-benchmarks noise-free (the paper's
/// Discussion-section use case): guarded cache-latency measurements are
/// exactly the model's latencies.
#[test]
fn guarded_microbenchmark_is_noise_free() {
    use segscope_repro::segscope::InterruptGuard;
    let mut machine = warmed(MachineConfig::xiaomi_air13(), 0x723);
    let outcomes = InterruptGuard::collect_clean(&mut machine, 40, 4_000, |m| {
        m.clflush(0xA000);
        let cold = m.mem_access(0xA000).cycles;
        let warm = m.mem_access(0xA000).cycles;
        (cold, warm)
    })
    .expect("clean samples");
    for (cold, warm) in outcomes {
        assert_eq!(cold, machine.memory().config().dram_cycles);
        assert_eq!(warm, machine.memory().config().l1_cycles);
    }
}
