//! Trace/ground-truth reconciliation: the observability trace is a
//! fourth ledger that must balance against [`irq::GroundTruth`] and
//! [`segscope::DeliveryAudit`] on every Table I vendor preset.
//!
//! Clean (`Exact`) runs leave zero unmatched events; fault-injected runs
//! leave exactly one `IrqDropped`/`IrqDuplicated` event per fault-log
//! entry, so the books balance even when the audit verdict is Degraded.

use segscope_repro::obs;
use segscope_repro::segscope::{DeliveryAudit, SegProbe};
use segscope_repro::segsim::{FaultPlan, Machine, MachineConfig};

/// Probes `n` samples on a traced machine and returns the audit, the
/// trace, and the ground-truth delivery count.
fn traced_run(config: MachineConfig, seed: u64, n: usize) -> (DeliveryAudit, obs::TraceSink, u64) {
    let mut machine = Machine::new(config, seed);
    machine.install_trace_sink(obs::TraceSink::with_capacity(1 << 16));
    let mut probe = SegProbe::new();
    let samples = probe.probe_n(&mut machine, n).expect("probe works");
    let audit = DeliveryAudit::for_machine(&machine, samples.len());
    let truth = machine.ground_truth().len() as u64;
    (
        audit,
        machine.take_trace_sink().expect("sink installed"),
        truth,
    )
}

#[test]
fn clean_runs_reconcile_exactly_on_every_preset() {
    for (i, config) in MachineConfig::table1().into_iter().enumerate() {
        let name = config.name.clone();
        let (audit, sink, truth) = traced_run(config, 0x8EC0 + i as u64, 150);
        assert!(audit.is_exact(), "{name}: clean run must audit Exact");
        let rec = audit.reconcile_trace(&sink);
        assert_eq!(rec.unmatched_deliveries(), 0, "{name}: {rec:?}");
        assert!(rec.is_consistent(), "{name}: {rec:?}");
        // The trace's delivery events are the ground truth, one for one.
        assert_eq!(
            sink.count_class(obs::EventClass::IrqDelivered) as u64,
            truth,
            "{name}: trace deliveries != ground truth"
        );
        assert_eq!(rec.dropped_events, 0, "{name}");
        assert_eq!(rec.duplicated_events, 0, "{name}");
    }
}

#[test]
fn injected_delivery_faults_leave_matching_trace_events() {
    let plan = FaultPlan::none()
        .with_drop_prob(0.2)
        .with_duplicate_prob(0.15);
    for (i, config) in MachineConfig::table1().into_iter().enumerate() {
        let name = config.name.clone();
        let (audit, sink, truth) = traced_run(config.with_fault_plan(plan), 0xFA17 + i as u64, 150);
        assert!(
            audit.dropped > 0 && audit.duplicated > 0,
            "{name}: plan must inject faults, got {audit:?}"
        );
        assert!(!audit.is_exact(), "{name}: delivery faults cannot be Exact");
        let rec = audit.reconcile_trace(&sink);
        // One trace event per fault-log entry: the books balance even
        // though the probe's count is degraded.
        assert!(rec.is_consistent(), "{name}: {rec:?}");
        assert_eq!(rec.dropped_events, audit.dropped, "{name}");
        assert_eq!(rec.duplicated_events, audit.duplicated, "{name}");
        assert_eq!(
            sink.count_class(obs::EventClass::IrqDelivered) as u64,
            truth,
            "{name}: trace deliveries != ground truth under faults"
        );
    }
}
